//! The threaded job executor: key-partitioned workers, watermark
//! propagation, and end-to-end measurement.
//!
//! Execution mirrors Figure 1(b) of the paper: every stage runs as
//! `parallelism` single-threaded workers over disjoint key partitions,
//! connected by bounded channels. Watermarks flow with the data; a
//! worker's event time is the minimum across its inputs. A final
//! `MAX_TIMESTAMP` watermark closes every window when a bounded source
//! ends.
//!
//! Tuples move between stages in micro-batches of up to
//! [`RunOptions::batch_size`] (one channel operation per batch instead
//! of per tuple). Batches are force-flushed before every watermark,
//! barrier, and end marker, and additionally after
//! [`RunOptions::batch_linger`] on slow streams, so event-time
//! semantics, checkpoint alignment, and the sink's accounting are
//! independent of the batch size — see DESIGN.md § Exchange layer.
//!
//! Latency accounting: each tuple and watermark carries the wall-clock
//! nanosecond at which it left the source (one stamp per tuple, even
//! inside a batch); window outputs inherit the origin of the watermark
//! that triggered them, so the sink observes true end-to-end latency
//! including every store interaction (the paper's Kafka-based
//! methodology, §6.2).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use flowkv_common::backend::{OperatorContext, StateBackendFactory};
use flowkv_common::error::StoreError;
use flowkv_common::hash::partition_of;
use flowkv_common::ioring::IoPolicy;
use flowkv_common::metrics::MetricsSnapshot;
use flowkv_common::registry::{StateKey, StateRegistry};
use flowkv_common::telemetry::{self, Counter, Gauge, Histogram, HistogramSnapshot, Telemetry};
use flowkv_common::trace::{self as ftrace, SpanRecorder, TraceCtx, TraceHandle, Tracer};
use flowkv_common::types::{Timestamp, Tuple, MAX_TIMESTAMP, MIN_TIMESTAMP};

use crate::job::{Job, Stage};
use crate::join::IntervalJoinOperator;
use crate::latency::{LatencySummary, Stamped};
use crate::operator::WindowOperator;

/// The stateful operator running inside a worker, if any.
enum WorkerOp {
    Window(WindowOperator),
    Join(IntervalJoinOperator),
}

impl WorkerOp {
    fn on_batch(
        &mut self,
        batch: &mut [Stamped],
        out: &mut Vec<Stamped>,
    ) -> Result<(), StoreError> {
        match self {
            WorkerOp::Window(op) => op.on_batch(batch, out),
            WorkerOp::Join(op) => op.on_batch(batch, out),
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Vec<Tuple>) -> Result<(), StoreError> {
        match self {
            WorkerOp::Window(op) => op.on_watermark(wm, out),
            WorkerOp::Join(op) => op.on_watermark(wm, out),
        }
    }

    fn checkpoint(&mut self, dir: &std::path::Path) -> Result<(), StoreError> {
        match self {
            WorkerOp::Window(op) => op.checkpoint(dir),
            WorkerOp::Join(op) => op.checkpoint(dir),
        }
    }

    fn restore(&mut self, dir: &std::path::Path) -> Result<(), StoreError> {
        match self {
            WorkerOp::Window(op) => op.restore(dir),
            WorkerOp::Join(op) => op.restore(dir),
        }
    }

    fn set_collect_late(&mut self, collect: bool) {
        if let WorkerOp::Window(op) = self {
            op.set_collect_late(collect);
        }
    }

    fn dropped_late(&self) -> u64 {
        match self {
            WorkerOp::Window(op) => op.dropped_late(),
            WorkerOp::Join(op) => op.dropped_late(),
        }
    }

    fn take_late(&mut self) -> Vec<Tuple> {
        match self {
            WorkerOp::Window(op) => op.take_late(),
            WorkerOp::Join(_) => Vec::new(),
        }
    }

    fn backend_mut(&mut self) -> &mut dyn flowkv_common::backend::StateBackend {
        match self {
            WorkerOp::Window(op) => op.backend_mut(),
            WorkerOp::Join(op) => op.backend_mut(),
        }
    }
}

/// Options controlling one job run.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`RunOptions::new`] (then mutate fields) or, preferably, through
/// [`RunOptions::builder`]. Direct struct-literal construction is
/// deprecated and impossible outside this crate, so new knobs can be
/// added without a breaking change.
#[derive(Clone)]
#[non_exhaustive]
pub struct RunOptions {
    /// Directory for state-backend files.
    pub data_dir: PathBuf,
    /// Tuples between source watermarks.
    pub watermark_interval: usize,
    /// Out-of-orderness allowance subtracted from the max timestamp.
    pub watermark_slack: i64,
    /// Collect output tuples into [`JobResult::outputs`].
    pub collect_outputs: bool,
    /// Record per-output latencies.
    pub record_latency: bool,
    /// Cap the source rate (tuples per second of wall time).
    pub rate_limit: Option<u64>,
    /// Abort the run after this much wall time.
    pub timeout: Option<Duration>,
    /// Capacity of inter-stage channels.
    pub channel_capacity: usize,
    /// Emit an aligned checkpoint barrier after this many source tuples.
    pub checkpoint_after_tuples: Option<u64>,
    /// Directory receiving the aligned checkpoint (required when
    /// `checkpoint_after_tuples` is set).
    pub checkpoint_dir: Option<PathBuf>,
    /// Restore every window operator from this checkpoint before
    /// processing (the resume path after a failure).
    pub restore_from: Option<PathBuf>,
    /// Collect tuples dropped as late into [`JobResult::late_tuples`]
    /// (the late-data side output).
    pub collect_late: bool,
    /// Queryable-state registry. When set, every stateful worker
    /// publishes an immutable snapshot of its operator state after each
    /// watermark advance (and once more when its input ends), keyed by
    /// `job/operator/partition`. `None` (the default) leaves runs
    /// entirely unobserved — no snapshots are built.
    pub registry: Option<Arc<StateRegistry>>,
    /// Tuples per exchange micro-batch. Each inter-stage send carries up
    /// to this many tuples in one channel operation, amortizing per-tuple
    /// synchronization. Batches are force-flushed before every watermark,
    /// barrier, and end-of-stream marker, so event-time semantics and
    /// checkpoint alignment are identical at every batch size. `1` (the
    /// default) reproduces the classic tuple-at-a-time exchange.
    pub batch_size: usize,
    /// Longest a partially filled source batch may linger before being
    /// flushed anyway (checked as the next tuple arrives), bounding the
    /// extra latency batching can add to slow, rate-limited streams.
    pub batch_linger: Duration,
    /// Shared telemetry hub. When set, every worker records per-operator
    /// busy/idle time, queue depth, backpressure-stall time, batch fill,
    /// watermark lag, and checkpoint-barrier alignment time into its
    /// registry, and the state stores emit flight-recorder events (e.g.
    /// predicted-vs-actual trigger times). `None` (the default) skips
    /// every probe — the hot path carries only untaken `if let None`
    /// branches.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Stream telemetry as JSONL to this file: periodic registry
    /// snapshots plus drained flight-recorder events (see
    /// `flowkv_common::telemetry::validate_jsonl_line` for the schema).
    /// A fresh hub is created when `telemetry` is unset.
    pub telemetry_out: Option<PathBuf>,
    /// Interval between JSONL snapshot lines.
    pub telemetry_interval: Duration,
    /// How many times [`crate::supervisor::run_supervised`] may restart
    /// a failed run before giving up and surfacing the error. `0` (the
    /// default) fails fast, matching plain [`run_job`].
    pub max_restarts: u32,
    /// Base delay between supervised restarts. Attempt `k` (1-based)
    /// waits `restart_backoff * 2^(k-1)`, scaled by a deterministic
    /// jitter factor derived from `FLOWKV_FAULT_SEED` (see
    /// [`crate::backoff`]).
    pub restart_backoff: Duration,
    /// Number of key-range shards for [`crate::cluster::run_cluster`].
    /// Each shard is a full executor instance over a disjoint hash
    /// range; `1` (the default) is a single-worker cluster. Plain
    /// [`run_job`] ignores this knob.
    pub workers: usize,
    /// When set, [`crate::cluster::run_cluster`] takes a coordinated
    /// checkpoint mid-stream, repartitions every store's state to this
    /// parallelism, and resumes — live rescaling as recovery at a
    /// different worker count. Plain [`run_job`] ignores this knob.
    pub rescale_to: Option<usize>,
    /// Background I/O ring threads per state backend. `0` (the default)
    /// keeps every store read synchronous on the worker thread; any
    /// positive value lets stores route anticipatable reads (ETT-driven
    /// prefetch, AAR window scans, LSM block warm-ups, serving snapshots,
    /// compaction scans) through a per-backend
    /// [`flowkv_common::ioring::IoRing`]. Outputs are byte-identical
    /// either way.
    pub io_threads: usize,
    /// How far ahead of current stream time (milliseconds of event time)
    /// prefetch submissions may look when selecting windows whose
    /// ETT-predicted trigger is approaching.
    pub prefetch_horizon: i64,
    /// Soft cap on resident prefetched bytes per store instance; new
    /// submissions are deferred while the cap is exceeded.
    pub prefetch_budget_bytes: u64,
    /// Test-only knob: reorder ring completions pseudo-randomly from this
    /// seed to prove ordering independence. `None` in production.
    pub io_shuffle_seed: Option<u64>,
    /// Shared span tracer (see `flowkv_common::trace`). Set by callers
    /// that want to observe the trace while the job runs (the cluster
    /// coordinator shares one tracer across shards; the serving layer
    /// snapshots it live). When unset but `trace_sample` or `trace_out`
    /// is set, the run creates a private tracer.
    pub trace: Option<Arc<flowkv_common::trace::Tracer>>,
    /// Causal-trace sampling: every `trace_sample`-th sealed source
    /// batch carries a trace context through exchange, operators,
    /// stores, and I/O ring jobs. `0` (the default) disables tracing
    /// entirely; `1` traces every batch. Ignored unless a tracer is
    /// resolved (explicitly via `trace`, or implicitly by `trace_out`).
    pub trace_sample: u64,
    /// Write the run's spans as Chrome trace-event JSON (Perfetto-
    /// loadable) to this file when the run ends. Implies `trace_sample
    /// = 1` when no sample rate was chosen.
    pub trace_out: Option<PathBuf>,
    /// Chrome `pid` tagged on this executor's threads in trace exports.
    /// The cluster coordinator assigns each key-range shard its index
    /// so Perfetto shows one process lane per worker.
    pub trace_pid: u32,
    /// Two-tier state layout: when set, every state backend is wrapped
    /// in a [`flowkv::tier::TieredStore`] whose hot tier is capped at
    /// this many bytes per partition; sealed cold windows demote to
    /// compressed columnar blocks and promote back on access. `Some(0)`
    /// is the pathological forced-demotion mode (every write seals to a
    /// cold block immediately). `None` (the default) keeps the store
    /// hot-only. Outputs are byte-identical either way.
    pub tier_hot_bytes: Option<u64>,
    /// Dictionary-encode the value column of cold blocks (in addition
    /// to the always-on key dictionary and timestamp delta encoding).
    /// Only consulted when `tier_hot_bytes` is set.
    pub tier_compress: bool,
}

impl RunOptions {
    /// Defaults rooted at `data_dir`.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        RunOptions {
            data_dir: data_dir.into(),
            watermark_interval: 200,
            watermark_slack: 0,
            collect_outputs: false,
            record_latency: false,
            rate_limit: None,
            timeout: None,
            channel_capacity: 1024,
            checkpoint_after_tuples: None,
            checkpoint_dir: None,
            restore_from: None,
            collect_late: false,
            registry: None,
            batch_size: 1,
            batch_linger: Duration::from_millis(5),
            telemetry: None,
            telemetry_out: None,
            telemetry_interval: Duration::from_millis(250),
            max_restarts: 0,
            restart_backoff: Duration::from_millis(50),
            workers: 1,
            rescale_to: None,
            io_threads: 0,
            prefetch_horizon: 500,
            prefetch_budget_bytes: 8 << 20,
            io_shuffle_seed: None,
            trace: None,
            trace_sample: 0,
            trace_out: None,
            trace_pid: 0,
            tier_hot_bytes: None,
            tier_compress: true,
        }
    }

    /// The per-backend I/O policy implied by these options, or `None`
    /// when `io_threads` is zero (fully synchronous I/O).
    pub fn io_policy(&self) -> Option<IoPolicy> {
        if self.io_threads == 0 {
            return None;
        }
        Some(IoPolicy {
            threads: self.io_threads,
            prefetch_horizon: self.prefetch_horizon,
            prefetch_budget_bytes: self.prefetch_budget_bytes,
            shuffle_seed: self.io_shuffle_seed,
        })
    }

    /// Starts a builder rooted at `data_dir` — the preferred way to
    /// construct options.
    pub fn builder(data_dir: impl Into<PathBuf>) -> RunOptionsBuilder {
        RunOptionsBuilder {
            opts: RunOptions::new(data_dir),
        }
    }
}

/// Fluent builder for [`RunOptions`].
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use flowkv_spe::executor::RunOptions;
///
/// let opts = RunOptions::builder("/tmp/flowkv-doc")
///     .collect_outputs(true)
///     .watermark_interval(50)
///     .max_restarts(2)
///     .restart_backoff(Duration::from_millis(10))
///     .build();
/// assert_eq!(opts.max_restarts, 2);
/// ```
#[derive(Clone)]
pub struct RunOptionsBuilder {
    opts: RunOptions,
}

impl RunOptionsBuilder {
    /// Tuples between source watermarks.
    pub fn watermark_interval(mut self, n: usize) -> Self {
        self.opts.watermark_interval = n;
        self
    }

    /// Out-of-orderness allowance subtracted from the max timestamp.
    pub fn watermark_slack(mut self, slack: i64) -> Self {
        self.opts.watermark_slack = slack;
        self
    }

    /// Collect output tuples into [`JobResult::outputs`].
    pub fn collect_outputs(mut self, yes: bool) -> Self {
        self.opts.collect_outputs = yes;
        self
    }

    /// Record per-output latencies.
    pub fn record_latency(mut self, yes: bool) -> Self {
        self.opts.record_latency = yes;
        self
    }

    /// Cap the source rate (tuples per second of wall time).
    pub fn rate_limit(mut self, rate: u64) -> Self {
        self.opts.rate_limit = Some(rate);
        self
    }

    /// Abort the run after this much wall time.
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.opts.timeout = Some(limit);
        self
    }

    /// Capacity of inter-stage channels.
    pub fn channel_capacity(mut self, cap: usize) -> Self {
        self.opts.channel_capacity = cap;
        self
    }

    /// Emit an aligned checkpoint barrier after `n` source tuples,
    /// writing the snapshot into `dir`.
    pub fn checkpoint(mut self, n: u64, dir: impl Into<PathBuf>) -> Self {
        self.opts.checkpoint_after_tuples = Some(n);
        self.opts.checkpoint_dir = Some(dir.into());
        self
    }

    /// Restore every window operator from this checkpoint before
    /// processing.
    pub fn restore_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.opts.restore_from = Some(dir.into());
        self
    }

    /// Collect tuples dropped as late into [`JobResult::late_tuples`].
    pub fn collect_late(mut self, yes: bool) -> Self {
        self.opts.collect_late = yes;
        self
    }

    /// Publish queryable-state snapshots into `registry`.
    pub fn registry(mut self, registry: Arc<StateRegistry>) -> Self {
        self.opts.registry = Some(registry);
        self
    }

    /// Tuples per exchange micro-batch.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.opts.batch_size = n;
        self
    }

    /// Longest a partially filled source batch may linger.
    pub fn batch_linger(mut self, linger: Duration) -> Self {
        self.opts.batch_linger = linger;
        self
    }

    /// Shared telemetry hub recording per-operator probes.
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.opts.telemetry = Some(telemetry);
        self
    }

    /// Stream telemetry as JSONL to this file.
    pub fn telemetry_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.opts.telemetry_out = Some(path.into());
        self
    }

    /// Interval between JSONL snapshot lines.
    pub fn telemetry_interval(mut self, interval: Duration) -> Self {
        self.opts.telemetry_interval = interval;
        self
    }

    /// Bounded restarts for [`crate::supervisor::run_supervised`].
    pub fn max_restarts(mut self, n: u32) -> Self {
        self.opts.max_restarts = n;
        self
    }

    /// Base delay of the supervised exponential restart backoff.
    pub fn restart_backoff(mut self, backoff: Duration) -> Self {
        self.opts.restart_backoff = backoff;
        self
    }

    /// Number of key-range shards for [`crate::cluster::run_cluster`].
    pub fn workers(mut self, n: usize) -> Self {
        self.opts.workers = n;
        self
    }

    /// Rescale the cluster to this parallelism mid-stream (see
    /// [`crate::cluster::run_cluster`]).
    pub fn rescale_to(mut self, n: usize) -> Self {
        self.opts.rescale_to = Some(n);
        self
    }

    /// Background I/O ring threads per state backend (`0` = synchronous).
    pub fn io_threads(mut self, n: usize) -> Self {
        self.opts.io_threads = n;
        self
    }

    /// Event-time lookahead for prefetch submissions, in milliseconds.
    pub fn prefetch_horizon(mut self, horizon: i64) -> Self {
        self.opts.prefetch_horizon = horizon;
        self
    }

    /// Soft cap on resident prefetched bytes per store instance.
    pub fn prefetch_budget_bytes(mut self, bytes: u64) -> Self {
        self.opts.prefetch_budget_bytes = bytes;
        self
    }

    /// Test knob: reorder ring completions pseudo-randomly from `seed`.
    pub fn io_shuffle_seed(mut self, seed: u64) -> Self {
        self.opts.io_shuffle_seed = Some(seed);
        self
    }

    /// Record spans into this shared tracer.
    pub fn trace(mut self, tracer: Arc<flowkv_common::trace::Tracer>) -> Self {
        self.opts.trace = Some(tracer);
        self
    }

    /// Trace every `n`-th sealed source batch (`0` = tracing off).
    pub fn trace_sample(mut self, n: u64) -> Self {
        self.opts.trace_sample = n;
        self
    }

    /// Write Chrome trace-event JSON to `path` when the run ends.
    pub fn trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.opts.trace_out = Some(path.into());
        self
    }

    /// Chrome `pid` for this executor's threads in trace exports.
    pub fn trace_pid(mut self, pid: u32) -> Self {
        self.opts.trace_pid = pid;
        self
    }

    /// Wrap every state backend in the two-tier hot/cold layout with
    /// this hot-tier byte budget per partition (`0` forces demotion on
    /// every write).
    pub fn tier_hot_bytes(mut self, bytes: u64) -> Self {
        self.opts.tier_hot_bytes = Some(bytes);
        self
    }

    /// Dictionary-encode cold-block values (`true` by default; only
    /// consulted when `tier_hot_bytes` is set).
    pub fn tier_compress(mut self, on: bool) -> Self {
        self.opts.tier_compress = on;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> RunOptions {
        self.opts
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum JobError {
    /// A state store failed (out of memory, I/O, corruption).
    Store(StoreError),
    /// The configured wall-clock timeout expired (the paper terminates
    /// Faster's append runs the same way, §2.2).
    Timeout,
    /// A worker thread panicked.
    Panic(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Store(e) => write!(f, "store failure: {e}"),
            JobError::Timeout => write!(f, "wall-clock timeout"),
            JobError::Panic(msg) => write!(f, "worker panic: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The outcome of a successful run.
#[derive(Debug, Default)]
pub struct JobResult {
    /// Output tuples (when `collect_outputs` was set).
    pub outputs: Vec<Tuple>,
    /// Number of output tuples.
    pub output_count: u64,
    /// Number of source tuples.
    pub input_count: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Merged store metrics across all window partitions.
    pub store_metrics: MetricsSnapshot,
    /// Latency summary (when `record_latency` was set).
    pub latency: LatencySummary,
    /// Full end-to-end latency distribution in nanoseconds (when
    /// `record_latency`). A mergeable log-linear histogram replaces the
    /// old per-sample vector: the sink's memory stays O(buckets) no
    /// matter how many tuples flow.
    pub latency_histogram: HistogramSnapshot,
    /// Tuples dropped for arriving behind the watermark.
    pub dropped_late: u64,
    /// Whether the aligned checkpoint barrier completed at the sink.
    pub checkpoint_taken: bool,
    /// Tuples dropped as late (populated when `collect_late` was set).
    pub late_tuples: Vec<Tuple>,
    /// Outputs emitted before the checkpoint barrier (only populated
    /// when both `collect_outputs` and a checkpoint were requested).
    pub outputs_pre_checkpoint: Vec<Tuple>,
}

impl JobResult {
    /// Source throughput in tuples per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.input_count as f64 / secs
        }
    }
}

/// One element of an externally coordinated source stream, consumed by
/// [`run_job_items`].
///
/// Plain [`run_job`] wraps its tuple iterator in [`SourceItem::Tuple`]
/// and keeps the automatic watermark/barrier cadence; a cluster
/// coordinator instead injects the *global* schedule explicitly so every
/// key-range shard observes byte-identical event time (a shard-local
/// watermark would lag the global one and could flip session-window
/// merge decisions at the boundary).
#[derive(Clone, Debug)]
pub enum SourceItem {
    /// A data tuple.
    Tuple(Tuple),
    /// An explicit watermark. Injected watermarks bypass the automatic
    /// `watermark_interval` cadence (which still runs alongside unless
    /// the interval is set out of reach).
    Watermark(Timestamp),
    /// An aligned checkpoint barrier (same effect as reaching
    /// `checkpoint_after_tuples`).
    Barrier,
    /// Ends the stream *without* the final `MAX_TIMESTAMP` watermark:
    /// open windows stay open in the operators' checkpointed state
    /// instead of firing. This is how a rescale pauses a shard — the
    /// un-fired windows migrate and fire at the new parallelism.
    Halt,
}

/// One message on an inter-stage channel.
///
/// # Ordering invariant
///
/// Channels are FIFO per `(sender, channel)` pair, and every sender
/// flushes its pending micro-batches *before* emitting a control message
/// (watermark, barrier, end). Consequently a receiver observes, per
/// upstream: all tuples produced before a watermark ahead of that
/// watermark, and all pre-snapshot tuples ahead of that sender's
/// barrier. Checkpoint alignment and the sink's pre/post-barrier output
/// split both rely on this; the sink debug-asserts its observable
/// consequence (per-sender watermarks never regress).
enum Msg {
    /// A micro-batch of tuples, each carrying its own origin stamp and,
    /// when the batch was sampled for tracing, its causal context.
    Batch(Vec<Stamped>, Option<BatchTrace>),
    Watermark {
        ts: Timestamp,
        origin: u64,
    },
    /// An aligned checkpoint barrier (Chandy–Lamport style, as in
    /// Flink's snapshotting; paper §8).
    Barrier,
    End,
}

struct Envelope {
    sender: usize,
    msg: Msg,
}

/// Trace context riding on a sampled [`Msg::Batch`], plus the tracer
/// nanos at which the sender sealed it — the receiver's `queue_wait`
/// instant is `now − sent_nanos` (one shared clock, so the difference
/// is a duration even though the stamps cross threads).
#[derive(Clone, Copy)]
struct BatchTrace {
    ctx: TraceCtx,
    sent_nanos: u64,
}

/// How an [`Exchange`] participates in tracing.
enum ExchangeTrace {
    /// The source exchange *originates* traces: every `sample`-th sealed
    /// batch gets a fresh trace id and a `source_batch` root instant.
    Source {
        tracer: Arc<Tracer>,
        recorder: Arc<SpanRecorder>,
        sample: u64,
        sealed: u64,
    },
    /// Worker exchanges *propagate* the thread's active context (set
    /// while the worker processes a sampled batch) onto the batches they
    /// seal, stamping a fresh `sent_nanos`.
    Inherit { tracer: Arc<Tracer> },
}

/// An in-flight `exchange_send` span: source threads record on their
/// own recorder; worker threads go through the active-context helpers.
enum SendSpan {
    Direct(Arc<SpanRecorder>, ftrace::OpenSpan),
    Here(Option<ftrace::HereSpan>),
}

/// Registry handles for one exchange's backpressure accounting.
///
/// Only built when telemetry is enabled; the disabled path never takes a
/// clock reading on a send.
struct ExchangeProbe {
    /// Nanoseconds spent inside channel sends (time blocked on a full
    /// downstream queue dominates — the backpressure-stall signal).
    stall_nanos: Arc<Counter>,
    /// Tuples per sealed batch, recorded at flush time. Compare against
    /// the configured batch size for the fill ratio.
    batch_fill: Arc<Histogram>,
}

/// A batching sender over one channel boundary.
///
/// Tuples accumulate into per-destination micro-batches sealed at
/// `batch_size`; control messages go through [`Exchange::broadcast`],
/// which force-flushes every pending batch first so the [`Msg`] ordering
/// invariant holds at any batch size.
struct Exchange {
    txs: Vec<Sender<Envelope>>,
    pending: Vec<Vec<Stamped>>,
    batch_size: usize,
    sender: usize,
    probe: Option<ExchangeProbe>,
    trace: Option<ExchangeTrace>,
}

impl Exchange {
    fn new(
        txs: Vec<Sender<Envelope>>,
        batch_size: usize,
        sender: usize,
        probe: Option<ExchangeProbe>,
        trace: Option<ExchangeTrace>,
    ) -> Self {
        let batch_size = batch_size.max(1);
        let pending = txs.iter().map(|_| Vec::with_capacity(batch_size)).collect();
        Exchange {
            txs,
            pending,
            batch_size,
            sender,
            probe,
            trace,
        }
    }

    /// Decides the trace context for a batch being sealed now.
    fn seal_trace(&mut self) -> Option<BatchTrace> {
        match self.trace.as_mut()? {
            ExchangeTrace::Source {
                tracer,
                recorder,
                sample,
                sealed,
            } => {
                *sealed += 1;
                if *sample == 0 || !(*sealed).is_multiple_of(*sample) {
                    return None;
                }
                let born = tracer.now_nanos();
                let ctx = TraceCtx {
                    trace: tracer.next_trace_id(),
                    span: 0,
                    born,
                };
                recorder.instant("source_batch", "source", Some(ctx), Vec::new());
                Some(BatchTrace {
                    ctx,
                    sent_nanos: born,
                })
            }
            ExchangeTrace::Inherit { tracer } => ftrace::current().map(|ctx| BatchTrace {
                ctx,
                sent_nanos: tracer.now_nanos(),
            }),
        }
    }

    /// Queues one tuple for its key's partition, sending the batch once
    /// full. Returns `false` when the receiver hung up.
    fn send(&mut self, tuple: Tuple, origin: u64) -> bool {
        let dest = if self.txs.len() == 1 {
            0
        } else {
            partition_of(&tuple.key, self.txs.len())
        };
        self.pending[dest].push(Stamped { tuple, origin });
        if self.pending[dest].len() >= self.batch_size {
            return self.flush_dest(dest);
        }
        true
    }

    fn flush_dest(&mut self, dest: usize) -> bool {
        if self.pending[dest].is_empty() {
            return true;
        }
        let batch = std::mem::replace(&mut self.pending[dest], Vec::with_capacity(self.batch_size));
        let bt = self.seal_trace();
        // An `exchange_send` span brackets the channel operation for
        // sampled batches; its duration is the send-side backpressure
        // share of the batch's latency.
        let send_span = bt.map(|bt| match self.trace.as_ref().expect("traced seal") {
            ExchangeTrace::Source { recorder, .. } => SendSpan::Direct(
                Arc::clone(recorder),
                recorder.begin("exchange_send", "exchange", Some(bt.ctx)),
            ),
            ExchangeTrace::Inherit { .. } => {
                SendSpan::Here(ftrace::begin_here("exchange_send", "exchange"))
            }
        });
        let env = Envelope {
            sender: self.sender,
            msg: Msg::Batch(batch, bt),
        };
        let ok = match &self.probe {
            None => self.txs[dest].send(env).is_ok(),
            Some(probe) => {
                if let Msg::Batch(batch, _) = &env.msg {
                    probe.batch_fill.record(batch.len() as u64);
                }
                // Clock the send only when the channel is actually full:
                // the uncontended path stays timer-free, and the stall
                // counter measures pure backpressure wait.
                match self.txs[dest].try_send(env) {
                    Ok(()) => true,
                    Err(TrySendError::Disconnected(_)) => false,
                    Err(TrySendError::Full(env)) => {
                        let start = Instant::now();
                        let ok = self.txs[dest].send(env).is_ok();
                        probe.stall_nanos.add(start.elapsed().as_nanos() as u64);
                        ok
                    }
                }
            }
        };
        match send_span {
            None => {}
            Some(SendSpan::Direct(rec, open)) => rec.end(open, "exchange_send", "exchange"),
            Some(SendSpan::Here(span)) => ftrace::end_here(span, &[]),
        }
        ok
    }

    /// Flushes every pending batch.
    fn flush(&mut self) -> bool {
        let mut ok = true;
        for dest in 0..self.txs.len() {
            ok &= self.flush_dest(dest);
        }
        ok
    }

    /// `true` while some destination holds an unsent partial batch.
    fn has_pending(&self) -> bool {
        self.pending.iter().any(|p| !p.is_empty())
    }

    /// Flushes pending batches, then sends one control message to every
    /// destination (disconnects are ignored, as on the tuple path the
    /// caller already observed them).
    fn broadcast(&mut self, make: impl Fn() -> Msg) {
        self.flush();
        for tx in &self.txs {
            let _ = tx.send(Envelope {
                sender: self.sender,
                msg: make(),
            });
        }
    }
}

/// What each worker reports on exit.
#[derive(Default)]
struct WorkerReport {
    dropped_late: u64,
    metrics: MetricsSnapshot,
    late: Vec<Tuple>,
}

struct SinkReport {
    outputs: Vec<Tuple>,
    outputs_pre: Vec<Tuple>,
    output_count: u64,
    pre_count: u64,
    /// End-to-end latency distribution (empty unless `record_latency`).
    latency: HistogramSnapshot,
    checkpoint_complete: bool,
}

/// Runs `job` over the tuples of `source` using state backends from
/// `factory`.
///
/// The source iterator is consumed on a dedicated thread; tuples must
/// arrive in roughly ascending timestamp order (bounded by
/// `watermark_slack`), as a replayable log source would deliver them.
pub fn run_job(
    job: &Job,
    source: impl Iterator<Item = Tuple> + Send + 'static,
    factory: Arc<dyn StateBackendFactory>,
    options: &RunOptions,
) -> Result<JobResult, JobError> {
    run_job_inner(job, source.map(SourceItem::Tuple), factory, options).0
}

/// [`run_job`] over a pre-coordinated item stream: tuples interleaved
/// with explicit watermarks, barriers, and an optional [`SourceItem::Halt`].
///
/// This is the executor entry the cluster coordinator uses — one call
/// per key-range shard, each shard receiving its slice of the tuples but
/// the *same* global watermark/barrier schedule.
pub fn run_job_items(
    job: &Job,
    source: impl Iterator<Item = SourceItem> + Send + 'static,
    factory: Arc<dyn StateBackendFactory>,
    options: &RunOptions,
) -> Result<JobResult, JobError> {
    run_job_inner(job, source, factory, options).0
}

/// What the supervisor can salvage from a failed attempt: whether the
/// aligned checkpoint completed at the sink, and the outputs the sink
/// observed ahead of every barrier (exactly the tuples a downstream
/// system would have consumed as committed when the checkpoint closed).
#[derive(Default)]
pub(crate) struct AttemptSalvage {
    pub(crate) checkpoint_complete: bool,
    pub(crate) outputs_pre: Vec<Tuple>,
    pub(crate) pre_count: u64,
}

/// Name of the file inside a checkpoint directory recording the source
/// offset (in tuples) at which the aligned barrier was injected.
pub(crate) const SOURCE_OFFSET_FILE: &str = "SOURCE_OFFSET";

/// Applies the `tier_hot_bytes` knob: wraps `factory` in a
/// [`flowkv::tier::TieredFactory`] when tiering was requested and the
/// factory is not already tiered (the cluster coordinator wraps before
/// fanning out to per-shard executors, which would otherwise wrap
/// again).
pub(crate) fn maybe_tier_factory(
    factory: Arc<dyn StateBackendFactory>,
    options: &RunOptions,
) -> Arc<dyn StateBackendFactory> {
    let Some(hot_bytes) = options.tier_hot_bytes else {
        return factory;
    };
    if factory.name() == "tiered" {
        return factory;
    }
    let cfg = flowkv::tier::TierConfig {
        hot_bytes: hot_bytes as usize,
        compress: options.tier_compress,
        ..flowkv::tier::TierConfig::default()
    };
    Arc::new(flowkv::tier::TieredFactory::new(factory, cfg))
}

/// [`run_job`], additionally returning the sink-side salvage the
/// supervisor needs even when the run fails.
pub(crate) fn run_job_inner(
    job: &Job,
    source: impl Iterator<Item = SourceItem> + Send + 'static,
    factory: Arc<dyn StateBackendFactory>,
    options: &RunOptions,
) -> (Result<JobResult, JobError>, AttemptSalvage) {
    let factory = maybe_tier_factory(factory, options);
    let n = job.parallelism;
    let started = Instant::now();
    let epoch = started;
    let abort = Arc::new(AtomicBool::new(false));

    // Resolve the telemetry hub: an explicit hub wins; a JSONL sink alone
    // gets a fresh one; neither leaves the run fully uninstrumented.
    let run_telemetry: Option<Arc<Telemetry>> = match (&options.telemetry, &options.telemetry_out) {
        (Some(t), _) => Some(Arc::clone(t)),
        (None, Some(_)) => Some(Telemetry::new_shared()),
        (None, None) => None,
    };
    // Resolve the span tracer: an explicit tracer wins; `trace_out`
    // alone gets a private one and implies a sample rate of 1. Tracing
    // forces a telemetry hub into existence — stores and I/O rings reach
    // the tracer only through their telemetry handle.
    let trace_sample = if options.trace_sample > 0 {
        options.trace_sample
    } else if options.trace.is_some() || options.trace_out.is_some() {
        1
    } else {
        0
    };
    let run_tracer: Option<Arc<Tracer>> = if trace_sample > 0 {
        Some(options.trace.clone().unwrap_or_else(Tracer::new))
    } else {
        None
    };
    let run_telemetry = match (run_telemetry, &run_tracer) {
        (None, Some(_)) => Some(Telemetry::new_shared()),
        (t, _) => t,
    };
    if let (Some(t), Some(tracer)) = (&run_telemetry, &run_tracer) {
        t.set_trace(TraceHandle {
            tracer: Arc::clone(tracer),
            pid: options.trace_pid,
        });
    }

    // Channels: stage boundaries plus the sink boundary.
    let num_boundaries = job.stages.len() + 1;
    let mut senders: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(num_boundaries);
    let mut receivers: Vec<Vec<Receiver<Envelope>>> = Vec::with_capacity(num_boundaries);
    for boundary in 0..num_boundaries {
        let width = if boundary == num_boundaries - 1 { 1 } else { n };
        let mut tx = Vec::with_capacity(width);
        let mut rx = Vec::with_capacity(width);
        for _ in 0..width {
            let (t, r) = bounded(options.channel_capacity);
            tx.push(t);
            rx.push(r);
        }
        senders.push(tx);
        receivers.push(rx);
    }

    let mut handles = Vec::new();

    // Source thread (boundary 0).
    let source_tx = senders[0].clone();
    let abort_src = Arc::clone(&abort);
    let wm_interval = options.watermark_interval.max(1);
    let slack = options.watermark_slack;
    let rate_limit = options.rate_limit;
    let checkpoint_after = options.checkpoint_after_tuples;
    let batch_size = options.batch_size.max(1);
    let linger_nanos = options.batch_linger.as_nanos() as u64;
    let source_probe = run_telemetry.as_ref().map(|t| ExchangeProbe {
        stall_nanos: t
            .registry()
            .counter("exchange_stall_nanos{operator=source,partition=0}"),
        batch_fill: t
            .registry()
            .histogram("exchange_batch_fill{operator=source,partition=0}"),
    });
    let source_counters = run_telemetry.as_ref().map(|t| {
        (
            t.registry().counter("source_tuples_total"),
            t.registry().gauge("source_watermark"),
        )
    });
    let source_trace = run_tracer
        .as_ref()
        .map(|tracer| (Arc::clone(tracer), options.trace_pid, trace_sample));
    let source_handle = std::thread::Builder::new()
        .name("spe-source".into())
        .spawn(move || -> Result<u64, StoreError> {
            let t0 = epoch;
            let pace_start = Instant::now();
            let mut count: u64 = 0;
            let mut max_ts = MIN_TIMESTAMP;
            let source_trace = source_trace
                .map(|(tracer, pid, sample)| (tracer.thread(pid, "source"), tracer, sample));
            let src_rec = source_trace.as_ref().map(|(rec, _, _)| Arc::clone(rec));
            let mut barrier_seq: u64 = 0;
            let mut exchange = Exchange::new(
                source_tx,
                batch_size,
                0,
                source_probe,
                source_trace.map(|(recorder, tracer, sample)| ExchangeTrace::Source {
                    tracer,
                    recorder,
                    sample,
                    sealed: 0,
                }),
            );
            let mut last_flush: u64 = 0;
            let mut halted = false;
            for item in source {
                if abort_src.load(Ordering::Relaxed) {
                    break;
                }
                let tuple = match item {
                    SourceItem::Tuple(tuple) => tuple,
                    SourceItem::Watermark(ts) => {
                        let origin = t0.elapsed().as_nanos() as u64;
                        if let Some((_, watermark)) = &source_counters {
                            watermark.set(ts);
                        }
                        exchange.broadcast(|| Msg::Watermark { ts, origin });
                        last_flush = origin;
                        continue;
                    }
                    SourceItem::Barrier => {
                        if let Some(rec) = &src_rec {
                            barrier_seq += 1;
                            rec.instant(
                                "barrier_inject",
                                "barrier",
                                None,
                                vec![("barrier", barrier_seq as i64)],
                            );
                        }
                        exchange.broadcast(|| Msg::Barrier);
                        continue;
                    }
                    SourceItem::Halt => {
                        halted = true;
                        break;
                    }
                };
                if let Some(rate) = rate_limit {
                    // Token pacing: stay at or below `rate` tuples/sec.
                    // The clock is only consulted at burst boundaries
                    // (every 16 tuples), like `source::PacedSource`;
                    // per-tuple clock reads would reintroduce the
                    // per-element overhead batching removes.
                    if count.is_multiple_of(16) {
                        let expected = Duration::from_secs_f64(count as f64 / rate as f64);
                        let elapsed = pace_start.elapsed();
                        if expected > elapsed {
                            std::thread::sleep(expected - elapsed);
                        }
                    }
                }
                max_ts = max_ts.max(tuple.timestamp);
                let origin = t0.elapsed().as_nanos() as u64;
                if !exchange.send(tuple, origin) {
                    break;
                }
                count += 1;
                if let Some((tuples, _)) = &source_counters {
                    tuples.inc();
                }
                if checkpoint_after == Some(count) {
                    if let Some(rec) = &src_rec {
                        barrier_seq += 1;
                        rec.instant(
                            "barrier_inject",
                            "barrier",
                            None,
                            vec![("barrier", barrier_seq as i64)],
                        );
                    }
                    exchange.broadcast(|| Msg::Barrier);
                }
                if count.is_multiple_of(wm_interval as u64) {
                    let origin = t0.elapsed().as_nanos() as u64;
                    let wm = max_ts.saturating_sub(slack);
                    if let Some((_, watermark)) = &source_counters {
                        watermark.set(wm);
                    }
                    exchange.broadcast(|| Msg::Watermark { ts: wm, origin });
                    last_flush = origin;
                } else if !exchange.has_pending() {
                    last_flush = origin;
                } else if origin.saturating_sub(last_flush) >= linger_nanos {
                    // Slow stream: don't sit on a partial batch forever.
                    exchange.flush();
                    last_flush = origin;
                }
            }
            if !halted {
                let origin = t0.elapsed().as_nanos() as u64;
                exchange.broadcast(|| Msg::Watermark {
                    ts: MAX_TIMESTAMP,
                    origin,
                });
            }
            exchange.broadcast(|| Msg::End);
            Ok(count)
        })
        .expect("spawn source");

    // Stage workers.
    for (stage_idx, stage) in job.stages.iter().enumerate() {
        let upstreams = if stage_idx == 0 { 1 } else { n };
        #[allow(clippy::needless_range_loop)] // `worker` also names threads and dirs.
        for worker in 0..n {
            let rx = receivers[stage_idx][worker].clone();
            let next = senders[stage_idx + 1].clone();
            let stage = stage.clone();
            let abort = Arc::clone(&abort);
            let factory = Arc::clone(&factory);
            let data_dir = options.data_dir.join(&job.name);
            let paths = WorkerPaths {
                checkpoint_dir: options.checkpoint_dir.clone(),
                restore_from: options.restore_from.clone(),
                collect_late: options.collect_late,
                registry: options.registry.clone(),
                job_name: job.name.clone(),
                batch_size,
                telemetry: run_telemetry.clone(),
                io: options.io_policy(),
                epoch,
            };
            let handle = std::thread::Builder::new()
                .name(format!("spe-{}-{}", stage.name(), worker))
                .spawn(move || -> Result<WorkerReport, StoreError> {
                    run_worker(
                        stage, worker, upstreams, rx, next, abort, factory, data_dir, paths,
                    )
                })
                .expect("spawn worker");
            handles.push(handle);
        }
    }

    // Sink thread.
    let sink_rx = receivers[num_boundaries - 1][0].clone();
    let collect = options.collect_outputs;
    let record_latency = options.record_latency;
    let abort_sink = Arc::clone(&abort);
    // The latency histogram lives in the registry when telemetry is on
    // (so snapshots and Prometheus scrapes see it live), standalone
    // otherwise; either way the sink never buffers raw samples.
    let sink_hist = if record_latency {
        Some(match &run_telemetry {
            Some(t) => t.registry().histogram("sink_latency_nanos"),
            None => Arc::new(Histogram::new()),
        })
    } else {
        None
    };
    let sink_tuples = run_telemetry
        .as_ref()
        .map(|t| t.registry().counter("sink_tuples_total"));
    let sink_trace = run_telemetry.as_ref().and_then(|t| t.trace());
    let sink_handle = std::thread::Builder::new()
        .name("spe-sink".into())
        .spawn(move || -> SinkReport {
            let t0 = epoch;
            let sink_rec = sink_trace.map(|h| h.thread("sink"));
            let mut sink_barrier_seq: u64 = 0;
            let mut report = SinkReport {
                outputs: Vec::new(),
                outputs_pre: Vec::new(),
                output_count: 0,
                pre_count: 0,
                latency: HistogramSnapshot::default(),
                checkpoint_complete: false,
            };
            let mut ends = 0;
            let mut barrier_from = vec![false; n];
            // Observable consequence of the per-channel ordering
            // invariant (see [`Msg`]): each sender's watermarks arrive
            // non-decreasing. The pre/post checkpoint split below relies
            // on the same invariant.
            let mut last_wm = vec![MIN_TIMESTAMP; n];
            loop {
                match sink_rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(env) => match env.msg {
                        Msg::Batch(batch, bt) => {
                            // One arrival instant for the whole batch,
                            // but one origin per tuple: latency samples
                            // reflect each tuple's true departure.
                            let now = if record_latency {
                                t0.elapsed().as_nanos() as u64
                            } else {
                                0
                            };
                            if let (Some(rec), Some(bt)) = (&sink_rec, bt) {
                                // The batch's trace ends here: one
                                // queue_wait for the final hop, one
                                // batch_done carrying the end-to-end
                                // total (tracer clock) and the worst
                                // per-tuple latency (run clock) so the
                                // analyzer can reconcile against the
                                // sink's LatencySummary.
                                let tnow = rec.now_nanos();
                                rec.instant(
                                    "queue_wait",
                                    "queue",
                                    Some(bt.ctx),
                                    vec![
                                        ("wait", tnow.saturating_sub(bt.sent_nanos) as i64),
                                        ("tuples", batch.len() as i64),
                                    ],
                                );
                                let arrive = t0.elapsed().as_nanos() as u64;
                                let e2e_max = batch
                                    .iter()
                                    .map(|s| arrive.saturating_sub(s.origin))
                                    .max()
                                    .unwrap_or(0);
                                rec.instant(
                                    "batch_done",
                                    "sink",
                                    Some(bt.ctx),
                                    vec![
                                        ("total", tnow.saturating_sub(bt.ctx.born) as i64),
                                        ("e2e_max", e2e_max as i64),
                                        ("tuples", batch.len() as i64),
                                    ],
                                );
                            }
                            if let Some(tuples) = &sink_tuples {
                                tuples.add(batch.len() as u64);
                            }
                            for stamped in batch {
                                report.output_count += 1;
                                // Batches flush before barriers, so
                                // "arrived before that sender's barrier"
                                // stays an exact pre/post checkpoint
                                // split under batching.
                                if !barrier_from[env.sender] {
                                    report.pre_count += 1;
                                    if collect {
                                        report.outputs_pre.push(stamped.tuple.clone());
                                    }
                                }
                                if let Some(hist) = &sink_hist {
                                    hist.record(now.saturating_sub(stamped.origin));
                                }
                                if collect {
                                    report.outputs.push(stamped.tuple);
                                }
                            }
                        }
                        Msg::Watermark { ts, .. } => {
                            debug_assert!(
                                ts >= last_wm[env.sender],
                                "per-channel watermark order violated: {} < {}",
                                ts,
                                last_wm[env.sender]
                            );
                            last_wm[env.sender] = ts;
                        }
                        Msg::Barrier => {
                            barrier_from[env.sender] = true;
                            if barrier_from.iter().all(|&b| b) {
                                report.checkpoint_complete = true;
                                if let Some(rec) = &sink_rec {
                                    sink_barrier_seq += 1;
                                    rec.instant(
                                        "barrier_commit",
                                        "barrier",
                                        None,
                                        vec![("barrier", sink_barrier_seq as i64)],
                                    );
                                }
                            }
                        }
                        Msg::End => {
                            ends += 1;
                            if ends == n {
                                break;
                            }
                        }
                    },
                    Err(RecvTimeoutError::Timeout) => {
                        if abort_sink.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            if let Some(hist) = &sink_hist {
                report.latency = hist.snapshot();
            }
            report
        })
        .expect("spawn sink");

    // Receivers were cloned into threads; drop the runner's copies so
    // disconnects propagate.
    drop(receivers);
    drop(senders);

    // JSONL telemetry writer: periodic registry snapshots interleaved
    // with drained flight-recorder events, plus one final snapshot when
    // the run ends. Best-effort — a full disk never fails the job.
    let writer_stop = Arc::new(AtomicBool::new(false));
    let writer_handle = match (&run_telemetry, &options.telemetry_out) {
        (Some(t), Some(path)) => {
            let t = Arc::clone(t);
            let path = path.clone();
            let interval = options.telemetry_interval.max(Duration::from_millis(10));
            let stop = Arc::clone(&writer_stop);
            Some(
                std::thread::Builder::new()
                    .name("spe-telemetry".into())
                    .spawn(move || write_telemetry_jsonl(&t, &path, interval, &stop))
                    .expect("spawn telemetry writer"),
            )
        }
        _ => None,
    };

    // Watchdog for the wall-clock timeout.
    let timed_out = Arc::new(AtomicBool::new(false));
    let watchdog = options.timeout.map(|limit| {
        let abort = Arc::clone(&abort);
        let timed_out = Arc::clone(&timed_out);
        let deadline = Instant::now() + limit;
        std::thread::spawn(move || {
            while Instant::now() < deadline {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            timed_out.store(true, Ordering::Relaxed);
            abort.store(true, Ordering::Relaxed);
        })
    });

    // Join everything, aggregating reports and the first error.
    let mut first_error: Option<JobError> = None;
    let input_count = match source_handle.join() {
        Ok(Ok(count)) => count,
        Ok(Err(e)) => {
            first_error = Some(JobError::Store(e));
            0
        }
        Err(_) => {
            first_error = Some(JobError::Panic("source panicked".into()));
            0
        }
    };
    let mut merged = MetricsSnapshot::default();
    let mut dropped_late = 0;
    let mut late_tuples = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok(report)) => {
                merged = merged.merged(&report.metrics);
                dropped_late += report.dropped_late;
                late_tuples.extend(report.late);
            }
            Ok(Err(e)) => {
                abort.store(true, Ordering::Relaxed);
                if first_error.is_none() {
                    first_error = Some(JobError::Store(e));
                }
            }
            Err(_) => {
                abort.store(true, Ordering::Relaxed);
                if first_error.is_none() {
                    first_error = Some(JobError::Panic("worker panicked".into()));
                }
            }
        }
    }
    let sink = match sink_handle.join() {
        Ok(sink) => sink,
        Err(_) => {
            abort.store(true, Ordering::Relaxed);
            writer_stop.store(true, Ordering::Relaxed);
            if let Some(w) = watchdog {
                let _ = w.join();
            }
            if let Some(w) = writer_handle {
                let _ = w.join();
            }
            return (
                Err(JobError::Panic("sink panicked".into())),
                AttemptSalvage::default(),
            );
        }
    };
    abort.store(true, Ordering::Relaxed);
    if let Some(w) = watchdog {
        let _ = w.join();
    }
    writer_stop.store(true, Ordering::Relaxed);
    if let Some(w) = writer_handle {
        if let Ok(Err(e)) = w.join() {
            eprintln!("telemetry writer failed: {e}");
        }
    }

    // Export the run's spans as Chrome trace-event JSON. Written before
    // the error returns below — the trace of a failed run is the one
    // you want most. Best-effort, like the telemetry writer.
    if let (Some(tracer), Some(path)) = (&run_tracer, &options.trace_out) {
        let json = ftrace::chrome_trace_json(&tracer.drain());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write trace export to {}: {e}", path.display());
        }
    }

    // Persist the barrier's source offset next to the snapshot so the
    // supervisor can rewind the log source on recovery. Written via
    // temporary file + rename, like the stores' own manifests, so a
    // crash mid-write leaves no half-formed offset.
    if sink.checkpoint_complete {
        if let (Some(dir), Some(offset)) =
            (&options.checkpoint_dir, options.checkpoint_after_tuples)
        {
            let tmp = dir.join("SOURCE_OFFSET.tmp");
            let target = dir.join(SOURCE_OFFSET_FILE);
            let write = std::fs::write(&tmp, offset.to_string())
                .and_then(|_| std::fs::rename(&tmp, &target));
            if let Err(e) = write {
                eprintln!("failed to persist checkpoint source offset: {e}");
            }
        }
    }

    let salvage = AttemptSalvage {
        checkpoint_complete: sink.checkpoint_complete,
        outputs_pre: sink.outputs_pre,
        pre_count: sink.pre_count,
    };
    if timed_out.load(Ordering::Relaxed) {
        return (Err(JobError::Timeout), salvage);
    }
    if let Some(e) = first_error {
        return (Err(e), salvage);
    }

    let latency = LatencySummary::from_histogram(&sink.latency);
    let result = JobResult {
        outputs: sink.outputs,
        output_count: sink.output_count,
        input_count,
        elapsed: started.elapsed(),
        store_metrics: merged,
        latency,
        latency_histogram: sink.latency,
        dropped_late,
        checkpoint_taken: salvage.checkpoint_complete,
        late_tuples,
        outputs_pre_checkpoint: salvage.outputs_pre.clone(),
    };
    (Ok(result), salvage)
}

/// The body of the `spe-telemetry` writer thread: drains the flight
/// recorder and snapshots the registry every `interval` until `stop`,
/// then writes one final drain + snapshot so short runs still leave a
/// complete record.
fn write_telemetry_jsonl(
    t: &Telemetry,
    path: &std::path::Path,
    interval: Duration,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut seq = 0u64;
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        for event in t.recorder().drain() {
            writeln!(out, "{}", telemetry::event_json(&event))?;
        }
        seq += 1;
        let uptime_ms = t.now_nanos() / 1_000_000;
        let samples = t.registry().snapshot();
        writeln!(
            out,
            "{}",
            telemetry::snapshot_json(seq, uptime_ms, &samples)
        )?;
        if stopping {
            break;
        }
        // Sleep in short slices so shutdown stays prompt even with long
        // snapshot intervals.
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::Relaxed) {
            let step = (interval - slept).min(Duration::from_millis(20));
            std::thread::sleep(step);
            slept += step;
        }
    }
    out.flush()
}

/// Checkpoint and restore locations handed to each worker, plus the
/// optional queryable-state registry, the exchange batch size, and the
/// run's telemetry hub.
struct WorkerPaths {
    checkpoint_dir: Option<PathBuf>,
    restore_from: Option<PathBuf>,
    collect_late: bool,
    registry: Option<Arc<StateRegistry>>,
    job_name: String,
    batch_size: usize,
    telemetry: Option<Arc<Telemetry>>,
    io: Option<IoPolicy>,
    /// The run's clock epoch — lets the worker convert run-clock stamps
    /// (tuple/watermark origins) into tracer-clock instants when it
    /// originates a fire trace.
    epoch: Instant,
}

/// Per-worker directory inside a checkpoint.
fn worker_ckpt_dir(root: &std::path::Path, stage_name: &str, worker: usize) -> PathBuf {
    root.join(stage_name).join(format!("p{worker}"))
}

/// Registry handles for one worker's self-accounting, labelled
/// `{operator=<stage>,partition=<worker>}`. Built once at worker start;
/// the hot loop then only touches `Arc`ed atomics.
struct WorkerProbe {
    /// Nanoseconds spent processing messages (operator + exchange work).
    busy_nanos: Arc<Counter>,
    /// Nanoseconds spent waiting on the input channel.
    idle_nanos: Arc<Counter>,
    /// Tuples received in data batches.
    tuples: Arc<Counter>,
    /// Input-queue depth sampled at every channel receive.
    queue_depth: Arc<Histogram>,
    /// Last event-time watermark applied (sentinel-free).
    watermark: Arc<Gauge>,
    /// `max event ts seen − watermark` at each advance, clamped to ≥ 0.
    watermark_lag: Arc<Gauge>,
    /// First-barrier-to-alignment time per checkpoint.
    barrier_align: Arc<Histogram>,
}

impl WorkerProbe {
    fn new(telemetry: &Telemetry, operator: &str, worker: usize) -> Self {
        let labels = format!("{{operator={operator},partition={worker}}}");
        let registry = telemetry.registry();
        WorkerProbe {
            busy_nanos: registry.counter(&format!("operator_busy_nanos{labels}")),
            idle_nanos: registry.counter(&format!("operator_idle_nanos{labels}")),
            tuples: registry.counter(&format!("operator_tuples_total{labels}")),
            queue_depth: registry.histogram(&format!("operator_queue_depth{labels}")),
            watermark: registry.gauge(&format!("operator_watermark{labels}")),
            watermark_lag: registry.gauge(&format!("operator_watermark_lag_ms{labels}")),
            barrier_align: registry.histogram(&format!("barrier_align_nanos{labels}")),
        }
    }
}

/// The body of one stage worker.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    stage: Stage,
    worker: usize,
    upstreams: usize,
    rx: Receiver<Envelope>,
    next: Vec<Sender<Envelope>>,
    abort: Arc<AtomicBool>,
    factory: Arc<dyn StateBackendFactory>,
    data_dir: PathBuf,
    paths: WorkerPaths,
) -> Result<WorkerReport, StoreError> {
    let mut operator: Option<WorkerOp> = None;
    // Span recorder for this worker thread, registered when the run's
    // telemetry hub carries a tracer. Store calls record through the
    // thread-local context (see `TracedBackend`), so the backend wrap
    // below is the only store-side hookup needed.
    let trace_handle = paths.telemetry.as_ref().and_then(|t| t.trace());
    let trace_rec = trace_handle
        .as_ref()
        .map(|h| h.thread(&format!("{}/p{}", stage.name(), worker)));
    let stateful = match &stage {
        Stage::Window(spec) => Some((spec.name.clone(), spec.semantics())),
        Stage::IntervalJoin(spec) => Some((spec.name.clone(), spec.semantics())),
        Stage::Stateless { .. } => None,
    };
    if let Some((name, semantics)) = stateful {
        let ctx = OperatorContext {
            operator: name,
            partition: worker,
            semantics,
            data_dir,
            telemetry: paths.telemetry.clone(),
            io: paths.io.clone(),
        };
        let mut backend = factory.create(&ctx)?;
        if trace_rec.is_some() {
            backend = ftrace::TracedBackend::wrap(backend);
        }
        let mut op = match &stage {
            Stage::Window(spec) => WorkerOp::Window(WindowOperator::new(spec.clone(), backend)),
            Stage::IntervalJoin(spec) => {
                WorkerOp::Join(IntervalJoinOperator::new(spec.clone(), backend))
            }
            Stage::Stateless { .. } => unreachable!("stateful checked above"),
        };
        if let Some(src) = &paths.restore_from {
            op.restore(&worker_ckpt_dir(src, stage.name(), worker))?;
        }
        op.set_collect_late(paths.collect_late);
        operator = Some(op);
    }

    let probe = paths
        .telemetry
        .as_ref()
        .map(|t| WorkerProbe::new(t, stage.name(), worker));
    let exchange_probe = paths.telemetry.as_ref().map(|t| {
        let labels = format!("{{operator={},partition={}}}", stage.name(), worker);
        ExchangeProbe {
            stall_nanos: t
                .registry()
                .counter(&format!("exchange_stall_nanos{labels}")),
            batch_fill: t
                .registry()
                .histogram(&format!("exchange_batch_fill{labels}")),
        }
    });

    let io_on = paths.io.is_some() && operator.is_some();
    let mut wms = vec![MIN_TIMESTAMP; upstreams];
    let mut origins = vec![0u64; upstreams];
    let mut current_wm = MIN_TIMESTAMP;
    // Largest tuple timestamp this worker has seen (tracked when either
    // the telemetry probe or the prefetcher needs stream time).
    let mut max_event_ts = MIN_TIMESTAMP;
    // First-barrier arrival instant of the in-flight alignment.
    let mut barrier_started: Option<Instant> = None;
    // Open `barrier_align` span of the in-flight alignment, plus this
    // worker's barrier sequence number — barriers are totally ordered
    // per run, so the sequence stitches one checkpoint's spans together
    // across workers (and shards) without a protocol change.
    let mut barrier_span: Option<ftrace::OpenSpan> = None;
    let mut worker_barrier_seq: u64 = 0;
    let mut ends = 0;
    let mut outputs: Vec<Tuple> = Vec::new();
    let mut stamped_out: Vec<Stamped> = Vec::new();
    let mut exchange = Exchange::new(
        next,
        paths.batch_size,
        worker,
        exchange_probe,
        trace_handle.as_ref().map(|h| ExchangeTrace::Inherit {
            tracer: Arc::clone(&h.tracer),
        }),
    );
    // Monotone snapshot counter for the queryable-state registry.
    let mut publish_epoch = 0u64;
    let state_key = paths
        .registry
        .as_ref()
        .map(|_| StateKey::new(paths.job_name.clone(), stage.name(), worker));
    // Advisory per-entry TTL published with every snapshot, derived
    // from the stage's window semantics (the serving layer surfaces it
    // on v2 state listings).
    let publish_ttl = match &stage {
        Stage::Window(spec) => spec.semantics().window.retention_hint_ms(),
        Stage::IntervalJoin(spec) => spec.semantics().window.retention_hint_ms(),
        Stage::Stateless { .. } => None,
    };

    // Publishes an immutable snapshot of this worker's state. The worker
    // is the sole writer of its store, so the snapshot is built between
    // tuples and can never observe a half-applied update.
    let publish_view = |operator: &mut Option<WorkerOp>,
                        epoch: &mut u64,
                        watermark: Timestamp|
     -> Result<(), StoreError> {
        let (Some(registry), Some(key), Some(op)) = (
            paths.registry.as_ref(),
            state_key.as_ref(),
            operator.as_mut(),
        ) else {
            return Ok(());
        };
        if let Some(mut view) = op.backend_mut().read_view()? {
            *epoch += 1;
            view.epoch = *epoch;
            view.watermark = watermark;
            view.ttl_ms = publish_ttl;
            registry.publish(key.clone(), view);
        }
        Ok(())
    };

    // Aligned-barrier bookkeeping: once a sender's barrier arrives, its
    // later messages are held until every sender's barrier has arrived.
    let mut barrier_from = vec![false; upstreams];
    let mut aligning = false;
    let mut held: Vec<Envelope> = Vec::new();
    let mut pending: std::collections::VecDeque<Envelope> = std::collections::VecDeque::new();

    // Busy/idle accounting runs on a single chained clock: each phase
    // boundary takes ONE `Instant::now()` that ends the previous span
    // and starts the next, halving the per-message timer cost. Queue
    // depth is sampled every 16th receive — it is a distribution sample
    // anyway, and `rx.len()` takes the channel lock.
    let mut clock = probe.as_ref().map(|_| Instant::now());
    let mut recv_count = 0u32;
    let result = (|| -> Result<WorkerReport, StoreError> {
        'recv: loop {
            let env = if let Some(env) = pending.pop_front() {
                // Held messages replay inside the busy span of the
                // barrier that released them; no idle boundary here.
                env
            } else {
                let received = rx.recv_timeout(Duration::from_millis(100));
                if let (Some(p), Some(last)) = (&probe, clock.as_mut()) {
                    let now = Instant::now();
                    p.idle_nanos.add((now - *last).as_nanos() as u64);
                    *last = now;
                }
                match received {
                    Ok(env) => {
                        if let Some(p) = &probe {
                            recv_count = recv_count.wrapping_add(1);
                            if recv_count & 0xf == 0 {
                                p.queue_depth.record(rx.len() as u64);
                            }
                        }
                        env
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            };
            if abort.load(Ordering::Relaxed) {
                break;
            }
            if aligning && barrier_from[env.sender] && !matches!(env.msg, Msg::End) {
                held.push(env);
                continue;
            }
            // Busy time covers operator work plus downstream sends; the
            // labeled block lets the watermark fast-path skip out without
            // bypassing the accounting below it.
            'handle: {
                match env.msg {
                    Msg::Batch(mut batch, bt) => {
                        if let Some(p) = &probe {
                            p.tuples.add(batch.len() as u64);
                        }
                        // Stream time feeds both the watermark-lag probe
                        // and the prefetch horizon.
                        if probe.is_some() || io_on {
                            for stamped in &batch {
                                max_event_ts = max_event_ts.max(stamped.tuple.timestamp);
                            }
                        }
                        // Sampled batch: record the channel residency,
                        // then make its context active for the duration
                        // of the batch — store calls, prefetch advances,
                        // ring submissions, and downstream sends all
                        // attach to it through the thread-local.
                        let trace_scope = match (&trace_rec, bt) {
                            (Some(rec), Some(bt)) => {
                                rec.instant(
                                    "queue_wait",
                                    "queue",
                                    Some(bt.ctx),
                                    vec![
                                        (
                                            "wait",
                                            rec.now_nanos().saturating_sub(bt.sent_nanos) as i64,
                                        ),
                                        ("tuples", batch.len() as i64),
                                    ],
                                );
                                Some(ftrace::enter(rec, bt.ctx))
                            }
                            _ => None,
                        };
                        let batch_span = if trace_scope.is_some() {
                            ftrace::begin_here("on_batch", "compute")
                        } else {
                            None
                        };
                        stamped_out.clear();
                        match &stage {
                            Stage::Stateless { f, .. } => {
                                for stamped in &batch {
                                    outputs.clear();
                                    f(&stamped.tuple, &mut outputs);
                                    let origin = stamped.origin;
                                    stamped_out.extend(
                                        outputs.drain(..).map(|tuple| Stamped { tuple, origin }),
                                    );
                                }
                            }
                            Stage::Window(_) | Stage::IntervalJoin(_) => {
                                operator
                                    .as_mut()
                                    .expect("stateful stage has operator")
                                    .on_batch(&mut batch, &mut stamped_out)?;
                            }
                        }
                        // Batch boundary: drain finished background reads
                        // and schedule the next horizon of prefetches.
                        // Runs inside the compute span so the nested
                        // store/prefetch subtraction in the attribution
                        // sees every child it subtracts.
                        if io_on {
                            if let Some(op) = operator.as_mut() {
                                op.backend_mut().advance_prefetch(max_event_ts)?;
                            }
                        }
                        ftrace::end_here(batch_span, &[("out", stamped_out.len() as i64)]);
                        for stamped in stamped_out.drain(..) {
                            if !exchange.send(stamped.tuple, stamped.origin) {
                                return Ok(WorkerReport::default());
                            }
                        }
                        // Windowed stages often emit nothing per batch —
                        // the outputs surface later, on a watermark fire
                        // — so the ingest trace completes here rather
                        // than at the sink. A later sink-side
                        // `batch_done` (pass-through stages) simply
                        // extends the same trace; attribution takes the
                        // latest completion.
                        if let (Some(rec), Some(ctx)) = (&trace_rec, ftrace::current()) {
                            rec.instant(
                                "batch_done",
                                "compute",
                                Some(ctx),
                                vec![("total", rec.now_nanos().saturating_sub(ctx.born) as i64)],
                            );
                        }
                        drop(trace_scope);
                    }
                    Msg::Watermark { ts, origin } => {
                        wms[env.sender] = ts;
                        origins[env.sender] = origin;
                        let (min_idx, &min_wm) = wms
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, ts)| **ts)
                            .expect("at least one upstream");
                        if min_wm <= current_wm {
                            break 'handle;
                        }
                        current_wm = min_wm;
                        if let Some(p) = &probe {
                            // The MAX_TIMESTAMP end-of-stream sentinel would
                            // wreck the gauge (and the lag), so it never
                            // lands in the registry.
                            if min_wm != MAX_TIMESTAMP {
                                p.watermark.set(min_wm);
                                p.watermark_lag
                                    .set(max_event_ts.saturating_sub(min_wm).max(0));
                            }
                        }
                        let origin = origins[min_idx];
                        // A stateful fire originates its own trace:
                        // window outputs inherit the watermark's origin
                        // for latency accounting, so the trace is born
                        // at the watermark's source departure (the run
                        // stamp converted onto the tracer clock) — the
                        // sink's `batch_done` total then measures the
                        // same interval the `LatencySummary` samples.
                        // Stateless hops never originate here: their
                        // batches already carry the ingest trace.
                        let fire_scope = match (&trace_rec, &trace_handle) {
                            (Some(rec), Some(h)) if operator.is_some() => {
                                let run_now = paths.epoch.elapsed().as_nanos() as u64;
                                let born = rec
                                    .now_nanos()
                                    .saturating_sub(run_now.saturating_sub(origin));
                                Some(ftrace::enter(
                                    rec,
                                    TraceCtx {
                                        trace: h.tracer.next_trace_id(),
                                        span: 0,
                                        born,
                                    },
                                ))
                            }
                            _ => None,
                        };
                        let wm_span = if fire_scope.is_some() {
                            ftrace::begin_here("on_watermark", "compute")
                        } else {
                            None
                        };
                        // Stateless hops still get a lifecycle span
                        // (trace 0) so Perfetto shows the forwarding
                        // work even though no trace is originated.
                        let wm_plain = if fire_scope.is_none() {
                            trace_rec
                                .as_ref()
                                .map(|rec| rec.begin("on_watermark", "compute", None))
                        } else {
                            None
                        };
                        let mut fired = 0usize;
                        if let Some(op) = operator.as_mut() {
                            outputs.clear();
                            op.on_watermark(min_wm, &mut outputs)?;
                            fired = outputs.len();
                            for out in outputs.drain(..) {
                                if !exchange.send(out, origin) {
                                    return Ok(WorkerReport::default());
                                }
                            }
                        }
                        // Forwarding the watermark flushes every pending
                        // batch first, preserving tuple-before-watermark
                        // order downstream.
                        exchange.broadcast(|| Msg::Watermark { ts: min_wm, origin });
                        publish_view(&mut operator, &mut publish_epoch, min_wm)?;
                        // Watermark boundary: window fires just consumed
                        // prefetched state — top the buffers back up.
                        if io_on {
                            if let Some(op) = operator.as_mut() {
                                op.backend_mut().advance_prefetch(max_event_ts)?;
                            }
                        }
                        ftrace::end_here(wm_span, &[("fired", fired as i64)]);
                        if let (Some(rec), Some(span)) = (&trace_rec, wm_plain) {
                            rec.end(span, "on_watermark", "compute");
                        }
                        drop(fire_scope);
                    }
                    Msg::Barrier => {
                        if probe.is_some() && barrier_started.is_none() {
                            barrier_started = Some(Instant::now());
                        }
                        if barrier_span.is_none() {
                            if let Some(rec) = &trace_rec {
                                worker_barrier_seq += 1;
                                barrier_span = Some(rec.begin_with(
                                    "barrier_align",
                                    "barrier",
                                    None,
                                    vec![("barrier", worker_barrier_seq as i64)],
                                ));
                            }
                        }
                        barrier_from[env.sender] = true;
                        aligning = true;
                        if barrier_from.iter().all(|&b| b) {
                            if let (Some(p), Some(t0)) = (&probe, barrier_started.take()) {
                                p.barrier_align.record(t0.elapsed().as_nanos() as u64);
                            }
                            // Alignment done; the snapshot gets its own
                            // span so align wait and store snapshot time
                            // stay separable in the export.
                            if let (Some(rec), Some(span)) = (&trace_rec, barrier_span.take()) {
                                rec.end(span, "barrier_align", "barrier");
                            }
                            // Barrier aligned: snapshot, forward, release.
                            // The broadcast flushes pending batches before
                            // the barrier, keeping the pre/post-snapshot
                            // split exact downstream.
                            if let (Some(dir), Some(op)) =
                                (&paths.checkpoint_dir, operator.as_mut())
                            {
                                let ckpt_span = trace_rec.as_ref().map(|rec| {
                                    rec.begin_with(
                                        "store_snapshot",
                                        "barrier",
                                        None,
                                        vec![("barrier", worker_barrier_seq as i64)],
                                    )
                                });
                                op.checkpoint(&worker_ckpt_dir(dir, stage.name(), worker))?;
                                if let (Some(rec), Some(span)) = (&trace_rec, ckpt_span) {
                                    rec.end(span, "store_snapshot", "barrier");
                                }
                            }
                            exchange.broadcast(|| Msg::Barrier);
                            aligning = false;
                            barrier_from.iter_mut().for_each(|b| *b = false);
                            pending.extend(held.drain(..));
                        }
                    }
                    Msg::End => {
                        ends += 1;
                        if ends == upstreams {
                            // Leave a final snapshot behind so clients can
                            // still query the job's terminal state.
                            publish_view(&mut operator, &mut publish_epoch, current_wm)?;
                            exchange.broadcast(|| Msg::End);
                            break 'recv;
                        }
                    }
                }
            }
            if let (Some(p), Some(last)) = (&probe, clock.as_mut()) {
                let now = Instant::now();
                p.busy_nanos.add((now - *last).as_nanos() as u64);
                *last = now;
            }
        }
        Ok(WorkerReport::default())
    })();

    // Collect the operator's accounting and release its store even on the
    // error path.
    let mut report = match &result {
        Ok(_) => WorkerReport::default(),
        Err(_) => WorkerReport::default(),
    };
    if let Some(mut op) = operator {
        report.dropped_late = op.dropped_late();
        report.late = op.take_late();
        report.metrics = op.backend_mut().metrics().snapshot();
        let _ = op.backend_mut().close();
    }
    result.map(|_| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::BackendChoice;
    use crate::functions::{CountAggregate, FnProcess};
    use crate::job::{AggregateSpec, JobBuilder};
    use crate::window::WindowAssigner;
    use flowkv_common::scratch::ScratchDir;
    use std::sync::Arc as StdArc;

    fn tuples(n: u64, keys: u64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    format!("key-{}", i % keys).into_bytes(),
                    1u64.to_le_bytes().to_vec(),
                    i as i64,
                )
            })
            .collect()
    }

    fn count_job(parallelism: usize) -> Job {
        JobBuilder::new("count-job")
            .parallelism(parallelism)
            .window(
                "counts",
                WindowAssigner::Fixed { size: 1000 },
                AggregateSpec::Incremental(StdArc::new(CountAggregate)),
            )
            .build()
    }

    #[test]
    fn counts_are_exact_across_backends_and_parallelism() {
        for choice in BackendChoice::all_small_for_tests() {
            for parallelism in [1, 3] {
                let dir = ScratchDir::new("exec-count").unwrap();
                let mut opts = RunOptions::new(dir.path());
                opts.collect_outputs = true;
                opts.watermark_interval = 50;
                let result = run_job(
                    &count_job(parallelism),
                    tuples(5000, 10).into_iter(),
                    choice.build(FactoryOptions::new()),
                    &opts,
                )
                .unwrap_or_else(|e| panic!("{} p{parallelism}: {e}", choice.name()));
                assert_eq!(result.input_count, 5000);
                // 5 windows × 10 keys = 50 outputs of 100 each.
                assert_eq!(
                    result.output_count,
                    50,
                    "backend {} parallelism {parallelism}",
                    choice.name()
                );
                let total: u64 = result
                    .outputs
                    .iter()
                    .map(|t| crate::functions::decode_u64(&t.value))
                    .sum();
                assert_eq!(total, 5000);
            }
        }
    }

    #[test]
    fn stateless_stage_filters_and_feeds_window() {
        let dir = ScratchDir::new("exec-stateless").unwrap();
        let job = JobBuilder::new("filtered")
            .parallelism(2)
            .stateless("keep-even-keys", |t, out| {
                if t.key.ends_with(b"0") || t.key.ends_with(b"2") {
                    out.push(t.clone());
                }
            })
            .window(
                "counts",
                WindowAssigner::Fixed { size: 1000 },
                AggregateSpec::Incremental(StdArc::new(CountAggregate)),
            )
            .build();
        let mut opts = RunOptions::new(dir.path());
        opts.collect_outputs = true;
        let result = run_job(
            &job,
            tuples(1000, 4).into_iter(),
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &opts,
        )
        .unwrap();
        // Keys key-0 and key-2 survive: one window, 2 outputs of 250.
        assert_eq!(result.output_count, 2);
        for t in &result.outputs {
            assert_eq!(crate::functions::decode_u64(&t.value), 250);
        }
    }

    #[test]
    fn session_job_end_to_end() {
        let dir = ScratchDir::new("exec-session").unwrap();
        let job = JobBuilder::new("sessions")
            .parallelism(2)
            .window(
                "sessionize",
                WindowAssigner::Session { gap: 10 },
                AggregateSpec::FullList(StdArc::new(FnProcess::new(|_k, _w, vals| {
                    vec![(vals.len() as u64).to_le_bytes().to_vec()]
                }))),
            )
            .build();
        // Each key gets bursts of 5 tuples separated by 100ms gaps.
        let mut input = Vec::new();
        for burst in 0..20i64 {
            for j in 0..5i64 {
                for key in 0..4 {
                    input.push(Tuple::new(
                        format!("k{key}").into_bytes(),
                        1u64.to_le_bytes().to_vec(),
                        burst * 100 + j,
                    ));
                }
            }
        }
        let mut opts = RunOptions::new(dir.path());
        opts.collect_outputs = true;
        opts.watermark_interval = 10;
        let result = run_job(
            &job,
            input.into_iter(),
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &opts,
        )
        .unwrap();
        // 20 bursts × 4 keys = 80 sessions of 5 tuples each.
        assert_eq!(result.output_count, 80);
        assert!(result
            .outputs
            .iter()
            .all(|t| crate::functions::decode_u64(&t.value) == 5));
    }

    #[test]
    fn registry_receives_views_and_output_is_unchanged() {
        let registry = StateRegistry::new_shared();
        let mut counts = Vec::new();
        for observe in [false, true] {
            let dir = ScratchDir::new("exec-registry").unwrap();
            let mut opts = RunOptions::new(dir.path());
            opts.collect_outputs = true;
            opts.watermark_interval = 50;
            if observe {
                opts.registry = Some(Arc::clone(&registry));
            }
            let result = run_job(
                &count_job(2),
                tuples(5000, 10).into_iter(),
                BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
                &opts,
            )
            .unwrap();
            let mut outputs: Vec<(Vec<u8>, Vec<u8>)> = result
                .outputs
                .into_iter()
                .map(|t| (t.key, t.value))
                .collect();
            outputs.sort();
            counts.push(outputs);
        }
        // Serving never changes what the job computes.
        assert_eq!(counts[0], counts[1]);
        // Both workers left a terminal snapshot behind.
        let states = registry.list();
        assert_eq!(states.len(), 2);
        for s in &states {
            assert_eq!(s.key.job, "count-job");
            assert_eq!(s.key.operator, "counts");
            assert!(s.epoch > 0, "no snapshot was ever published");
            assert_eq!(s.watermark, MAX_TIMESTAMP);
        }
    }

    #[test]
    fn oom_backend_fails_the_job() {
        let dir = ScratchDir::new("exec-oom").unwrap();
        let job = JobBuilder::new("oom")
            .parallelism(1)
            .window(
                "big-state",
                WindowAssigner::Fixed { size: 1_000_000 },
                AggregateSpec::FullList(StdArc::new(FnProcess::new(|_k, _w, _v| Vec::new()))),
            )
            .build();
        let choice = BackendChoice::InMemory {
            budget_per_partition: 4 << 10,
        };
        let err = run_job(
            &job,
            tuples(10_000, 100).into_iter(),
            choice.build(FactoryOptions::new()),
            &RunOptions::new(dir.path()),
        )
        .unwrap_err();
        match err {
            JobError::Store(e) => assert!(e.is_out_of_memory(), "{e}"),
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn timeout_aborts_the_run() {
        let dir = ScratchDir::new("exec-timeout").unwrap();
        let job = count_job(1);
        let mut opts = RunOptions::new(dir.path());
        opts.timeout = Some(Duration::from_millis(50));
        opts.rate_limit = Some(10); // 10 tuples/sec: will never finish.
        let err = run_job(
            &job,
            tuples(10_000, 10).into_iter(),
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, JobError::Timeout), "{err}");
    }

    #[test]
    fn batched_exchange_matches_unbatched_and_keeps_checkpoint_split_exact() {
        // A two-stage job (stateless fan-in feeding windows) so barrier
        // alignment across multiple upstreams is exercised, with a
        // mid-stream checkpoint. Every batch size must produce the same
        // outputs, the same pre/post-barrier split, and one latency
        // sample per output tuple.
        let job = JobBuilder::new("batched")
            .parallelism(3)
            .stateless("pass", |t, out| out.push(t.clone()))
            .window(
                "counts",
                WindowAssigner::Fixed { size: 1000 },
                AggregateSpec::Incremental(StdArc::new(CountAggregate)),
            )
            .build();
        let mut reference: Option<(Vec<(Vec<u8>, Vec<u8>)>, Vec<(Vec<u8>, Vec<u8>)>)> = None;
        for batch_size in [1usize, 8, 256] {
            let dir = ScratchDir::new("exec-batched").unwrap();
            let ckpt = ScratchDir::new("exec-batched-ckpt").unwrap();
            let mut opts = RunOptions::new(dir.path());
            opts.collect_outputs = true;
            opts.record_latency = true;
            opts.watermark_interval = 50;
            opts.batch_size = batch_size;
            opts.checkpoint_after_tuples = Some(2_500);
            opts.checkpoint_dir = Some(ckpt.path().to_path_buf());
            let result = run_job(
                &job,
                tuples(5_000, 10).into_iter(),
                BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
                &opts,
            )
            .unwrap_or_else(|e| panic!("batch_size {batch_size}: {e}"));
            assert!(result.checkpoint_taken, "batch_size {batch_size}");
            assert_eq!(
                result.latency.count, result.output_count,
                "one latency sample per tuple, not per batch (batch_size {batch_size})"
            );
            let sorted = |v: &[Tuple]| {
                let mut v: Vec<(Vec<u8>, Vec<u8>)> =
                    v.iter().map(|t| (t.key.clone(), t.value.clone())).collect();
                v.sort();
                v
            };
            let got = (
                sorted(&result.outputs),
                sorted(&result.outputs_pre_checkpoint),
            );
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "batch_size {batch_size} diverged"),
            }
        }
    }

    #[test]
    fn latency_is_recorded_for_paced_runs() {
        let dir = ScratchDir::new("exec-latency").unwrap();
        let job = count_job(1);
        let mut opts = RunOptions::new(dir.path());
        opts.record_latency = true;
        opts.watermark_interval = 20;
        opts.rate_limit = Some(50_000);
        let result = run_job(
            &job,
            tuples(2_000, 5).into_iter(),
            BackendChoice::all_small_for_tests()[1].build(FactoryOptions::new()),
            &opts,
        )
        .unwrap();
        assert!(result.latency.count > 0);
        assert!(result.latency.p95 > 0);
        assert!(result.latency.p95 >= result.latency.p50);
    }
}
