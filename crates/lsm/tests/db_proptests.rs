//! Property tests for the LSM database against a sorted-map model.
//!
//! Arbitrary interleavings of puts, merges, deletes, gets, scans, and
//! flushes must match a `BTreeMap` model — across flush-induced L0
//! files, level compactions, tombstones, and merge-operand folding.

use std::collections::BTreeMap;

use flowkv_common::scratch::ScratchDir;
use flowkv_lsm::entry::Resolved;
use flowkv_lsm::{Db, DbConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Put { k: u8, v: Vec<u8> },
    Merge { k: u8, v: Vec<u8> },
    Delete { k: u8 },
    Get { k: u8 },
    Scan { lo: u8, hi: u8, limit: usize },
    Flush,
    Compact,
}

#[derive(Clone, Debug, PartialEq)]
enum ModelValue {
    Value(Vec<u8>),
    List(Vec<Vec<u8>>),
}

fn key(k: u8) -> Vec<u8> {
    format!("key-{k:03}").into_bytes()
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let val = prop::collection::vec(any::<u8>(), 0..24);
    prop::collection::vec(
        prop_oneof![
            3 => (0u8..12, val.clone()).prop_map(|(k, v)| Op::Put { k, v }),
            3 => (0u8..12, val).prop_map(|(k, v)| Op::Merge { k, v }),
            2 => (0u8..12).prop_map(|k| Op::Delete { k }),
            3 => (0u8..12).prop_map(|k| Op::Get { k }),
            1 => (0u8..12, 0u8..14, 1usize..20)
                .prop_map(|(lo, hi, limit)| Op::Scan { lo, hi, limit }),
            1 => Just(Op::Flush),
            1 => Just(Op::Compact),
        ],
        1..200,
    )
}

fn model_of(resolved: Resolved) -> Option<ModelValue> {
    match resolved {
        Resolved::Absent => None,
        Resolved::Value(v) => Some(ModelValue::Value(v)),
        Resolved::List(l) => Some(ModelValue::List(l)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn db_matches_btreemap_model(ops in ops()) {
        let dir = ScratchDir::new("lsm-prop").unwrap();
        let mut cfg = DbConfig::small_for_tests();
        // Aggressive thresholds so compactions happen under tiny data.
        cfg.write_buffer_bytes = 256;
        cfg.l0_compaction_trigger = 2;
        cfg.level_base_bytes = 2 << 10;
        let mut db = Db::open(dir.path(), cfg).unwrap();
        let mut model: BTreeMap<Vec<u8>, ModelValue> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Put { k, v } => {
                    db.put(&key(*k), v).unwrap();
                    model.insert(key(*k), ModelValue::Value(v.clone()));
                }
                Op::Merge { k, v } => {
                    db.merge(&key(*k), v).unwrap();
                    match model.entry(key(*k)).or_insert_with(|| ModelValue::List(vec![])) {
                        ModelValue::List(l) => l.push(v.clone()),
                        ModelValue::Value(base) => {
                            let list = vec![base.clone(), v.clone()];
                            model.insert(key(*k), ModelValue::List(list));
                        }
                    }
                }
                Op::Delete { k } => {
                    db.delete(&key(*k)).unwrap();
                    model.remove(&key(*k));
                }
                Op::Get { k } => {
                    let got = model_of(db.get(&key(*k)).unwrap());
                    prop_assert_eq!(&got, &model.get(&key(*k)).cloned(), "get {}", k);
                }
                Op::Scan { lo, hi, limit } => {
                    let (lo_k, hi_k) = (key(*lo), key(*hi));
                    if lo_k >= hi_k {
                        continue;
                    }
                    let (items, resume) = db.scan(&lo_k, &hi_k, *limit).unwrap();
                    let expected: Vec<(Vec<u8>, ModelValue)> = model
                        .range(lo_k.clone()..hi_k.clone())
                        .take(*limit)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    let got: Vec<(Vec<u8>, ModelValue)> = items
                        .into_iter()
                        .map(|(k, r)| (k, model_of(r).expect("scan yields live")))
                        .collect();
                    prop_assert_eq!(&got, &expected);
                    // A resume token is mandatory when more live entries
                    // remain, and forbidden when the range was not even
                    // filled to the limit. (Exactly-at-limit may return a
                    // token optimistically, like LevelDB-style cursors.)
                    let model_count = model.range(lo_k..hi_k).count();
                    if model_count > *limit {
                        prop_assert!(resume.is_some());
                    }
                    if model_count < *limit {
                        prop_assert!(resume.is_none());
                    }
                }
                Op::Flush => db.flush().unwrap(),
                Op::Compact => {
                    db.flush().unwrap();
                    db.maybe_compact().unwrap();
                }
            }
        }
        // Final full sweep.
        for (k, expect) in &model {
            let got = model_of(db.get(k).unwrap());
            prop_assert_eq!(&got, &Some(expect.clone()));
        }
    }

    #[test]
    fn reopen_preserves_flushed_state(ops in ops()) {
        let dir = ScratchDir::new("lsm-prop-reopen").unwrap();
        let mut model: BTreeMap<Vec<u8>, ModelValue> = BTreeMap::new();
        {
            let mut db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
            for op in &ops {
                match op {
                    Op::Put { k, v } => {
                        db.put(&key(*k), v).unwrap();
                        model.insert(key(*k), ModelValue::Value(v.clone()));
                    }
                    Op::Merge { k, v } => {
                        db.merge(&key(*k), v).unwrap();
                        match model.entry(key(*k)).or_insert_with(|| ModelValue::List(vec![])) {
                            ModelValue::List(l) => l.push(v.clone()),
                            ModelValue::Value(base) => {
                                let list = vec![base.clone(), v.clone()];
                                model.insert(key(*k), ModelValue::List(list));
                            }
                        }
                    }
                    Op::Delete { k } => {
                        db.delete(&key(*k)).unwrap();
                        model.remove(&key(*k));
                    }
                    _ => {}
                }
            }
            db.flush().unwrap();
        }
        let mut db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        for (k, expect) in &model {
            let got = model_of(db.get(k).unwrap());
            prop_assert_eq!(&got, &Some(expect.clone()), "after reopen");
        }
    }
}
