//! Compaction: merging input tables into new output tables.
//!
//! The actual rewrite work lives here; the policy deciding *when* and
//! *what* to compact lives in [`crate::db`]. Inputs are provided as a
//! merging iterator over sources ordered newest-first; outputs split at a
//! target file size. At the bottom of the tree, tombstones are dropped
//! and `DeleteMerge` entries collapse.

use std::path::Path;
use std::sync::Arc;

use flowkv_common::error::Result;
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::iter::MergingIter;
use crate::sstable::{SstBuilder, SstMeta};

/// Parameters for one compaction run.
pub struct CompactionParams {
    /// Split output files when they reach this size.
    pub target_file_size: u64,
    /// Data-block target within output files.
    pub block_size: usize,
    /// Whether the output level is the bottom of the tree.
    pub bottom: bool,
}

/// Merges `inputs` into new table files in `dir`, allocating file numbers
/// from `next_file_no`.
pub fn compact(
    inputs: MergingIter<'_>,
    dir: &Path,
    next_file_no: &mut u64,
    params: &CompactionParams,
) -> Result<Vec<SstMeta>> {
    compact_in(&StdVfs::shared(), inputs, dir, next_file_no, params)
}

/// [`compact`], writing output tables through `vfs`.
pub fn compact_in(
    vfs: &Arc<dyn Vfs>,
    mut inputs: MergingIter<'_>,
    dir: &Path,
    next_file_no: &mut u64,
    params: &CompactionParams,
) -> Result<Vec<SstMeta>> {
    let mut outputs = Vec::new();
    let mut builder: Option<SstBuilder> = None;
    while let Some((key, entry)) = inputs.next_combined()? {
        let entry = if params.bottom {
            match entry.finalize_bottom() {
                Some(e) => e,
                None => continue,
            }
        } else {
            entry
        };
        if builder.is_none() {
            let file_no = *next_file_no;
            *next_file_no += 1;
            let path = dir.join(SstMeta::file_name(file_no));
            builder = Some(SstBuilder::create_in(
                vfs,
                &path,
                file_no,
                params.block_size,
            )?);
        }
        let b = builder.as_mut().expect("just created");
        b.add(&key, &entry)?;
        if b.estimated_size() >= params.target_file_size {
            outputs.push(builder.take().expect("present").finish()?);
        }
    }
    if let Some(b) = builder {
        if b.entries() > 0 {
            outputs.push(b.finish()?);
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{Entry, Resolved};
    use crate::iter::{EntrySource, VecSource};
    use flowkv_common::metrics::StoreMetrics;
    use flowkv_common::scratch::ScratchDir;

    fn b(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    fn run(sources: Vec<Vec<(Vec<u8>, Entry)>>, bottom: bool, dir: &Path) -> (Vec<SstMeta>, u64) {
        let boxed: Vec<Box<dyn EntrySource>> = sources
            .into_iter()
            .map(|v| Box::new(VecSource::new(v)) as Box<dyn EntrySource>)
            .collect();
        let merging = MergingIter::new(boxed).unwrap();
        let mut next = 1;
        let outs = compact(
            merging,
            dir,
            &mut next,
            &CompactionParams {
                target_file_size: 1 << 20,
                block_size: 512,
                bottom,
            },
        )
        .unwrap();
        (outs, next)
    }

    fn read_all(dir: &Path, meta: SstMeta) -> Vec<(Vec<u8>, Entry)> {
        let r = crate::sstable::SstReader::open(
            dir,
            meta,
            crate::cache::BlockCache::new(1 << 20),
            StoreMetrics::new_shared(),
        )
        .unwrap();
        let mut it = r.iter();
        let mut out = Vec::new();
        while let Some(pair) = it.next_entry().unwrap() {
            out.push(pair);
        }
        out
    }

    #[test]
    fn merges_and_keeps_tombstones_above_bottom() {
        let dir = ScratchDir::new("compact-mid").unwrap();
        let (outs, next) = run(
            vec![
                vec![(b("a"), Entry::Delete)],
                vec![(b("a"), Entry::Put(b("old"))), (b("b"), Entry::Put(b("x")))],
            ],
            false,
            dir.path(),
        );
        assert_eq!(next, 2);
        let entries = read_all(dir.path(), outs[0].clone());
        assert_eq!(entries[0], (b("a"), Entry::Delete));
        assert_eq!(entries[1], (b("b"), Entry::Put(b("x"))));
    }

    #[test]
    fn bottom_drops_tombstones() {
        let dir = ScratchDir::new("compact-bottom").unwrap();
        let (outs, _) = run(
            vec![
                vec![(b("a"), Entry::Delete)],
                vec![(b("a"), Entry::Put(b("old"))), (b("b"), Entry::Put(b("x")))],
            ],
            true,
            dir.path(),
        );
        let entries = read_all(dir.path(), outs[0].clone());
        assert_eq!(entries, vec![(b("b"), Entry::Put(b("x")))]);
    }

    #[test]
    fn merge_operands_concatenate_oldest_first() {
        let dir = ScratchDir::new("compact-merge").unwrap();
        let (outs, _) = run(
            vec![
                vec![(b("k"), Entry::Merge(vec![b("2")]))],
                vec![(b("k"), Entry::Merge(vec![b("1")]))],
            ],
            true,
            dir.path(),
        );
        let entries = read_all(dir.path(), outs[0].clone());
        assert_eq!(
            entries[0].1.clone().resolve(),
            Resolved::List(vec![b("1"), b("2")])
        );
    }

    #[test]
    fn output_splits_at_target_size() {
        let dir = ScratchDir::new("compact-split").unwrap();
        let source: Vec<(Vec<u8>, Entry)> = (0..100)
            .map(|i| {
                (
                    format!("key-{i:04}").into_bytes(),
                    Entry::Put(vec![7u8; 200]),
                )
            })
            .collect();
        let boxed: Vec<Box<dyn EntrySource>> = vec![Box::new(VecSource::new(source))];
        let merging = MergingIter::new(boxed).unwrap();
        let mut next = 1;
        let outs = compact(
            merging,
            dir.path(),
            &mut next,
            &CompactionParams {
                target_file_size: 2048,
                block_size: 512,
                bottom: true,
            },
        )
        .unwrap();
        assert!(outs.len() > 1, "expected multiple output files");
        let total: u64 = outs.iter().map(|m| m.entries).sum();
        assert_eq!(total, 100);
        // Output files must have disjoint, ascending ranges.
        for pair in outs.windows(2) {
            assert!(pair[0].largest < pair[1].smallest);
        }
    }

    #[test]
    fn empty_input_produces_no_files() {
        let dir = ScratchDir::new("compact-empty").unwrap();
        let (outs, next) = run(vec![vec![]], true, dir.path());
        assert!(outs.is_empty());
        assert_eq!(next, 1);
    }
}
