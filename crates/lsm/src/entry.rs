//! The write-entry model of the LSM tree.
//!
//! Every user key maps to at most one [`Entry`] per source (memtable or
//! SSTable). An entry is either *terminal* — it fully determines the
//! key's state — or a bare merge suffix that must be combined with older
//! entries found further down the tree. This is the mechanism behind
//! RocksDB's lazy merging of appended values: `Append()` becomes a cheap
//! merge operand, and the cost of assembling the full list is deferred to
//! reads and compactions.

use flowkv_common::codec::{put_len_prefixed, put_varint_u64, Decoder};
use flowkv_common::error::{Result, StoreError};

/// One logical state of a key within a single source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// A full value; shadows everything older.
    Put(Vec<u8>),
    /// A tombstone; shadows everything older.
    Delete,
    /// Merge operands awaiting a base further down the tree.
    Merge(Vec<Vec<u8>>),
    /// A full value followed by merge operands; terminal.
    PutMerge(Vec<u8>, Vec<Vec<u8>>),
    /// A tombstone followed by merge operands; terminal.
    DeleteMerge(Vec<Vec<u8>>),
}

/// The user-visible resolution of a fully combined entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolved {
    /// The key holds a single value (written by `put`).
    Value(Vec<u8>),
    /// The key holds a list of merged values (written by `merge`).
    List(Vec<Vec<u8>>),
    /// The key is absent or deleted.
    Absent,
}

impl Entry {
    /// Returns `true` when the entry fully determines the key's state and
    /// the backward search can stop.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Entry::Merge(_))
    }

    /// Folds `older` underneath `newer`.
    ///
    /// Only called when `newer` is non-terminal (a bare [`Entry::Merge`]);
    /// terminal entries shadow older state entirely.
    pub fn combine(newer: Entry, older: Entry) -> Entry {
        let ops = match newer {
            Entry::Merge(ops) => ops,
            terminal => return terminal,
        };
        match older {
            Entry::Put(v) => Entry::PutMerge(v, ops),
            Entry::Delete => Entry::DeleteMerge(ops),
            Entry::Merge(mut older_ops) => {
                older_ops.extend(ops);
                Entry::Merge(older_ops)
            }
            Entry::PutMerge(v, mut older_ops) => {
                older_ops.extend(ops);
                Entry::PutMerge(v, older_ops)
            }
            Entry::DeleteMerge(mut older_ops) => {
                older_ops.extend(ops);
                Entry::DeleteMerge(older_ops)
            }
        }
    }

    /// Appends one merge operand to this entry in place.
    pub fn push_operand(&mut self, op: Vec<u8>) {
        match self {
            Entry::Put(_) | Entry::Delete => {
                let old = std::mem::replace(self, Entry::Delete);
                *self = match old {
                    Entry::Put(v) => Entry::PutMerge(v, vec![op]),
                    Entry::Delete => Entry::DeleteMerge(vec![op]),
                    _ => unreachable!("matched above"),
                };
            }
            Entry::Merge(ops) | Entry::PutMerge(_, ops) | Entry::DeleteMerge(ops) => {
                ops.push(op);
            }
        }
    }

    /// Resolves a fully combined entry into its user-visible state.
    ///
    /// A bare [`Entry::Merge`] resolves as a list: reaching the bottom of
    /// the tree without a base means the merge operands are the entire
    /// history of the key.
    pub fn resolve(self) -> Resolved {
        match self {
            Entry::Put(v) => Resolved::Value(v),
            Entry::Delete => Resolved::Absent,
            Entry::Merge(ops) | Entry::DeleteMerge(ops) => {
                if ops.is_empty() {
                    Resolved::Absent
                } else {
                    Resolved::List(ops)
                }
            }
            Entry::PutMerge(v, ops) => {
                let mut list = Vec::with_capacity(ops.len() + 1);
                list.push(v);
                list.extend(ops);
                Resolved::List(list)
            }
        }
    }

    /// Finalizes the entry at the bottom level of the tree.
    ///
    /// Tombstones are dropped (`None`); a `DeleteMerge` collapses into a
    /// plain `Merge` because there is nothing older for the tombstone to
    /// shadow.
    pub fn finalize_bottom(self) -> Option<Entry> {
        match self {
            Entry::Delete => None,
            Entry::DeleteMerge(ops) => {
                if ops.is_empty() {
                    None
                } else {
                    Entry::Merge(ops).finalize_bottom()
                }
            }
            other => Some(other),
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_size(&self) -> usize {
        match self {
            Entry::Put(v) => v.len(),
            Entry::Delete => 0,
            Entry::Merge(ops) | Entry::DeleteMerge(ops) => ops.iter().map(|o| o.len() + 16).sum(),
            Entry::PutMerge(v, ops) => v.len() + ops.iter().map(|o| o.len() + 16).sum::<usize>(),
        }
    }

    /// Appends the tagged binary encoding of the entry to `buf`.
    pub fn encode_to(&self, buf: &mut Vec<u8>) {
        match self {
            Entry::Put(v) => {
                buf.push(0);
                put_len_prefixed(buf, v);
            }
            Entry::Delete => buf.push(1),
            Entry::Merge(ops) => {
                buf.push(2);
                encode_ops(buf, ops);
            }
            Entry::PutMerge(v, ops) => {
                buf.push(3);
                put_len_prefixed(buf, v);
                encode_ops(buf, ops);
            }
            Entry::DeleteMerge(ops) => {
                buf.push(4);
                encode_ops(buf, ops);
            }
        }
    }

    /// Decodes an entry previously written by [`Entry::encode_to`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Entry> {
        let tag = dec.take(1, "entry tag")?[0];
        Ok(match tag {
            0 => Entry::Put(dec.get_len_prefixed()?.to_vec()),
            1 => Entry::Delete,
            2 => Entry::Merge(decode_ops(dec)?),
            3 => {
                let v = dec.get_len_prefixed()?.to_vec();
                Entry::PutMerge(v, decode_ops(dec)?)
            }
            4 => Entry::DeleteMerge(decode_ops(dec)?),
            other => {
                return Err(StoreError::invalid_state(format!(
                    "unknown entry tag {other}"
                )))
            }
        })
    }
}

fn encode_ops(buf: &mut Vec<u8>, ops: &[Vec<u8>]) {
    put_varint_u64(buf, ops.len() as u64);
    for op in ops {
        put_len_prefixed(buf, op);
    }
}

fn decode_ops(dec: &mut Decoder<'_>) -> Result<Vec<Vec<u8>>> {
    let n = dec.get_varint_u64()? as usize;
    let mut ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        ops.push(dec.get_len_prefixed()?.to_vec());
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn terminality() {
        assert!(Entry::Put(b("v")).is_terminal());
        assert!(Entry::Delete.is_terminal());
        assert!(!Entry::Merge(vec![b("a")]).is_terminal());
        assert!(Entry::PutMerge(b("v"), vec![]).is_terminal());
        assert!(Entry::DeleteMerge(vec![]).is_terminal());
    }

    #[test]
    fn combine_merge_onto_put() {
        let newer = Entry::Merge(vec![b("x"), b("y")]);
        let older = Entry::Put(b("base"));
        assert_eq!(
            Entry::combine(newer, older),
            Entry::PutMerge(b("base"), vec![b("x"), b("y")])
        );
    }

    #[test]
    fn combine_merge_onto_delete() {
        let newer = Entry::Merge(vec![b("x")]);
        assert_eq!(
            Entry::combine(newer, Entry::Delete),
            Entry::DeleteMerge(vec![b("x")])
        );
    }

    #[test]
    fn combine_merge_chains_preserve_order() {
        let newer = Entry::Merge(vec![b("c"), b("d")]);
        let older = Entry::Merge(vec![b("a"), b("b")]);
        assert_eq!(
            Entry::combine(newer, older),
            Entry::Merge(vec![b("a"), b("b"), b("c"), b("d")])
        );
    }

    #[test]
    fn terminal_newer_shadows_older() {
        let newer = Entry::Put(b("new"));
        let older = Entry::PutMerge(b("old"), vec![b("x")]);
        assert_eq!(Entry::combine(newer, older), Entry::Put(b("new")));
    }

    #[test]
    fn push_operand_transitions() {
        let mut e = Entry::Put(b("v"));
        e.push_operand(b("a"));
        assert_eq!(e, Entry::PutMerge(b("v"), vec![b("a")]));
        let mut e = Entry::Delete;
        e.push_operand(b("a"));
        assert_eq!(e, Entry::DeleteMerge(vec![b("a")]));
        let mut e = Entry::Merge(vec![b("a")]);
        e.push_operand(b("b"));
        assert_eq!(e, Entry::Merge(vec![b("a"), b("b")]));
    }

    #[test]
    fn resolution() {
        assert_eq!(Entry::Put(b("v")).resolve(), Resolved::Value(b("v")));
        assert_eq!(Entry::Delete.resolve(), Resolved::Absent);
        assert_eq!(
            Entry::Merge(vec![b("a")]).resolve(),
            Resolved::List(vec![b("a")])
        );
        assert_eq!(
            Entry::PutMerge(b("v"), vec![b("a")]).resolve(),
            Resolved::List(vec![b("v"), b("a")])
        );
        assert_eq!(
            Entry::DeleteMerge(vec![b("a")]).resolve(),
            Resolved::List(vec![b("a")])
        );
    }

    #[test]
    fn bottom_finalization_drops_tombstones() {
        assert_eq!(Entry::Delete.finalize_bottom(), None);
        assert_eq!(Entry::DeleteMerge(vec![]).finalize_bottom(), None);
        assert_eq!(
            Entry::DeleteMerge(vec![b("a")]).finalize_bottom(),
            Some(Entry::Merge(vec![b("a")]))
        );
        assert_eq!(
            Entry::Put(b("v")).finalize_bottom(),
            Some(Entry::Put(b("v")))
        );
    }

    #[test]
    fn codec_roundtrip_all_variants() {
        let entries = vec![
            Entry::Put(b("value")),
            Entry::Delete,
            Entry::Merge(vec![b("a"), b("")]),
            Entry::PutMerge(b("v"), vec![b("x")]),
            Entry::DeleteMerge(vec![b("y"), b("z")]),
        ];
        for e in entries {
            let mut buf = Vec::new();
            e.encode_to(&mut buf);
            let mut dec = Decoder::new(&buf);
            assert_eq!(Entry::decode_from(&mut dec).unwrap(), e);
            assert!(dec.is_empty());
        }
    }

    #[test]
    fn unknown_tag_is_error() {
        let buf = [9u8];
        let mut dec = Decoder::new(&buf);
        assert!(Entry::decode_from(&mut dec).is_err());
    }
}
