//! Immutable, block-based, bloom-filtered sorted string tables.
//!
//! On-disk layout (all integers little-endian, every region followed by a
//! CRC32 of its payload):
//!
//! ```text
//! sst   := data-block*  index  bloom  footer
//! block := record*  crc:u32           (payload ≈ block_target bytes)
//! record:= varint(shared) varint(unshared) key-suffix entry
//!
//! Keys are prefix-compressed within each block (as in RocksDB's block
//! format): `shared` bytes are reused from the previous record's key and
//! `unshared` new bytes follow. The first record of a block always has
//! `shared = 0`.
//! index := varint(n) { len-prefixed(last_key) offset:u64 len:u64 }* crc
//! bloom := BloomFilter encoding  crc
//! footer:= index_off:u64 index_len:u64 bloom_off:u64 bloom_len:u64 magic:u64
//! ```
//!
//! Point lookups probe the bloom filter, binary-search the index by each
//! block's last key, and scan one block — the same path, and therefore the
//! same CPU shape, as RocksDB's.

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::codec::{crc32, put_len_prefixed, put_u64, put_varint_u64, Decoder};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::metrics::StoreMetrics;
use flowkv_common::vfs::{StdVfs, Vfs, VfsFile};

use crate::bloom::BloomFilter;
use crate::cache::BlockCache;
use crate::entry::Entry;

const FOOTER_LEN: u64 = 40;
const MAGIC: u64 = 0x464c_4f57_4b56_5353; // "FLOWKVSS"

/// Metadata describing one table file inside a version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SstMeta {
    /// Monotonic file number, unique within the database.
    pub file_no: u64,
    /// Size of the file in bytes.
    pub size: u64,
    /// Smallest key stored in the file.
    pub smallest: Vec<u8>,
    /// Largest key stored in the file.
    pub largest: Vec<u8>,
    /// Number of entries in the file.
    pub entries: u64,
}

impl SstMeta {
    /// Returns `true` when the file's key range intersects `[start, end)`.
    pub fn overlaps_range(&self, start: &[u8], end: &[u8]) -> bool {
        self.smallest.as_slice() < end && start <= self.largest.as_slice()
    }

    /// Returns `true` when `key` falls inside the file's key range.
    pub fn covers_key(&self, key: &[u8]) -> bool {
        self.smallest.as_slice() <= key && key <= self.largest.as_slice()
    }

    /// File name for this table within a database directory.
    pub fn file_name(file_no: u64) -> String {
        format!("{file_no:06}.sst")
    }
}

/// Streaming writer producing one SSTable from ascending keys.
pub struct SstBuilder {
    writer: BufWriter<Box<dyn VfsFile>>,
    path: PathBuf,
    file_no: u64,
    block_target: usize,
    block_buf: Vec<u8>,
    index: Vec<(Vec<u8>, u64, u64)>,
    key_hash_samples: Vec<Vec<u8>>,
    offset: u64,
    smallest: Option<Vec<u8>>,
    largest: Vec<u8>,
    last_key_in_block: Vec<u8>,
    /// Previous key within the current block, for prefix compression.
    block_prev_key: Vec<u8>,
    entries: u64,
}

impl SstBuilder {
    /// Creates a builder writing to `path` through the standard
    /// filesystem.
    pub fn create(path: impl AsRef<Path>, file_no: u64, block_target: usize) -> Result<Self> {
        Self::create_in(&StdVfs::shared(), path, file_no, block_target)
    }

    /// Creates a builder writing to `path` through `vfs`.
    pub fn create_in(
        vfs: &Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        file_no: u64,
        block_target: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .create(&path)
            .map_err(|e| StoreError::io_at("sst create", &path, e))?;
        Ok(SstBuilder {
            writer: BufWriter::new(file),
            path,
            file_no,
            block_target: block_target.max(256),
            block_buf: Vec::new(),
            index: Vec::new(),
            key_hash_samples: Vec::new(),
            offset: 0,
            smallest: None,
            largest: Vec::new(),
            last_key_in_block: Vec::new(),
            block_prev_key: Vec::new(),
            entries: 0,
        })
    }

    /// Adds the next entry; keys must arrive in strictly ascending order.
    pub fn add(&mut self, key: &[u8], entry: &Entry) -> Result<()> {
        debug_assert!(
            self.smallest.is_none() || self.largest.as_slice() < key,
            "keys must be strictly ascending"
        );
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest = key.to_vec();
        self.last_key_in_block = key.to_vec();
        let shared = common_prefix_len(&self.block_prev_key, key);
        put_varint_u64(&mut self.block_buf, shared as u64);
        put_varint_u64(&mut self.block_buf, (key.len() - shared) as u64);
        self.block_buf.extend_from_slice(&key[shared..]);
        self.block_prev_key = key.to_vec();
        entry.encode_to(&mut self.block_buf);
        self.key_hash_samples.push(key.to_vec());
        self.entries += 1;
        if self.block_buf.len() >= self.block_target {
            self.finish_block()?;
        }
        Ok(())
    }

    /// Completes the table and returns its metadata.
    pub fn finish(mut self) -> Result<SstMeta> {
        if !self.block_buf.is_empty() {
            self.finish_block()?;
        }
        // Index region.
        let mut index_buf = Vec::new();
        put_varint_u64(&mut index_buf, self.index.len() as u64);
        for (last_key, off, len) in &self.index {
            put_len_prefixed(&mut index_buf, last_key);
            put_u64(&mut index_buf, *off);
            put_u64(&mut index_buf, *len);
        }
        let index_off = self.offset;
        let index_len = index_buf.len() as u64;
        self.write_region(&index_buf)?;

        // Bloom region.
        let bloom = BloomFilter::build(self.key_hash_samples.iter().map(|k| k.as_slice()), 10);
        let mut bloom_buf = Vec::new();
        bloom.encode_to(&mut bloom_buf);
        let bloom_off = self.offset;
        let bloom_len = bloom_buf.len() as u64;
        self.write_region(&bloom_buf)?;

        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
        put_u64(&mut footer, index_off);
        put_u64(&mut footer, index_len);
        put_u64(&mut footer, bloom_off);
        put_u64(&mut footer, bloom_len);
        put_u64(&mut footer, MAGIC);
        self.writer
            .write_all(&footer)
            .map_err(|e| StoreError::io_at("sst footer", &self.path, e))?;
        self.offset += FOOTER_LEN;
        self.writer
            .flush()
            .map_err(|e| StoreError::io_at("sst flush", &self.path, e))?;
        self.writer
            .get_mut()
            .sync_data()
            .map_err(|e| StoreError::io_at("sst sync", &self.path, e))?;

        Ok(SstMeta {
            file_no: self.file_no,
            size: self.offset,
            smallest: self.smallest.unwrap_or_default(),
            largest: self.largest,
            entries: self.entries,
        })
    }

    /// Number of entries added so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Estimated current file size, used to split compaction outputs.
    pub fn estimated_size(&self) -> u64 {
        self.offset + self.block_buf.len() as u64
    }

    fn finish_block(&mut self) -> Result<()> {
        self.block_prev_key.clear();
        let off = self.offset;
        let len = self.block_buf.len() as u64;
        let buf = std::mem::take(&mut self.block_buf);
        self.write_region(&buf)?;
        self.index
            .push((std::mem::take(&mut self.last_key_in_block), off, len));
        Ok(())
    }

    fn write_region(&mut self, payload: &[u8]) -> Result<()> {
        self.writer
            .write_all(payload)
            .and_then(|_| self.writer.write_all(&crc32(payload).to_le_bytes()))
            .map_err(|e| StoreError::io_at("sst write", &self.path, e))?;
        self.offset += payload.len() as u64 + 4;
        Ok(())
    }
}

/// Read handle over one immutable table file.
pub struct SstReader {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    meta: SstMeta,
    index: Vec<(Vec<u8>, u64, u64)>,
    bloom: BloomFilter,
    cache: Arc<BlockCache>,
    metrics: Arc<StoreMetrics>,
}

impl SstReader {
    /// Opens the table file described by `meta` inside `dir` through the
    /// standard filesystem.
    pub fn open(
        dir: &Path,
        meta: SstMeta,
        cache: Arc<BlockCache>,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        Self::open_in(&StdVfs::shared(), dir, meta, cache, metrics)
    }

    /// Opens the table file described by `meta` inside `dir` through `vfs`.
    pub fn open_in(
        vfs: &Arc<dyn Vfs>,
        dir: &Path,
        meta: SstMeta,
        cache: Arc<BlockCache>,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        let path = dir.join(SstMeta::file_name(meta.file_no));
        let file = vfs
            .open_read(&path)
            .map_err(|e| StoreError::io_at("sst open", &path, e))?;
        let len = file
            .len()
            .map_err(|e| StoreError::io_at("sst stat", &path, e))?;
        if len < FOOTER_LEN {
            return Err(StoreError::corruption(&path, 0, "file shorter than footer"));
        }
        let mut footer = vec![0u8; FOOTER_LEN as usize];
        file.read_exact_at(&mut footer, len - FOOTER_LEN)
            .map_err(|e| StoreError::io_at("sst footer read", &path, e))?;
        let mut dec = Decoder::new(&footer);
        let index_off = dec.get_u64()?;
        let index_len = dec.get_u64()?;
        let bloom_off = dec.get_u64()?;
        let bloom_len = dec.get_u64()?;
        let magic = dec.get_u64()?;
        if magic != MAGIC {
            return Err(StoreError::corruption(&path, len - 8, "bad magic"));
        }
        let index_raw = read_region(file.as_ref(), &path, index_off, index_len)?;
        let mut dec = Decoder::new(&index_raw);
        let n = dec.get_varint_u64()? as usize;
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            let last_key = dec.get_len_prefixed()?.to_vec();
            let off = dec.get_u64()?;
            let blen = dec.get_u64()?;
            index.push((last_key, off, blen));
        }
        let bloom_raw = read_region(file.as_ref(), &path, bloom_off, bloom_len)?;
        let bloom = BloomFilter::decode_from(&mut Decoder::new(&bloom_raw))?;
        Ok(SstReader {
            file,
            path,
            meta,
            index,
            bloom,
            cache,
            metrics,
        })
    }

    /// The file's metadata.
    pub fn meta(&self) -> &SstMeta {
        &self.meta
    }

    /// Looks up `key`, returning its entry in this file if present.
    pub fn get(&self, key: &[u8]) -> Result<Option<Entry>> {
        if !self.meta.covers_key(key) || !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Some(block_idx) = self.find_block(key) else {
            return Ok(None);
        };
        let block = self.load_block(block_idx)?;
        let mut dec = Decoder::new(&block);
        let mut current: Vec<u8> = Vec::new();
        while !dec.is_empty() {
            read_block_key(&mut dec, &mut current, &self.path)?;
            let entry = Entry::decode_from(&mut dec)?;
            if current.as_slice() == key {
                return Ok(Some(entry));
            }
            if current.as_slice() > key {
                break;
            }
        }
        Ok(None)
    }

    /// Iterates `(key, entry)` pairs starting at the first key ≥ `start`.
    pub fn iter_from(&self, start: &[u8]) -> SstIter<'_> {
        let block_idx = self.find_block(start).unwrap_or(self.index.len());
        SstIter {
            reader: self,
            block_idx,
            block: None,
            pos: 0,
            current_key: Vec::new(),
            skip_until: Some(start.to_vec()),
        }
    }

    /// Iterates every `(key, entry)` pair in key order.
    pub fn iter(&self) -> SstIter<'_> {
        SstIter {
            reader: self,
            block_idx: 0,
            block: None,
            pos: 0,
            current_key: Vec::new(),
            skip_until: None,
        }
    }

    /// Locates the uncached block a `get(key)` would have to read:
    /// `(offset, length)` of its CRC'd region, or `None` when the key
    /// cannot be in this file or the block is already resident. The
    /// cache probe leaves recency and hit/miss counters untouched, so
    /// planning a warm-up never perturbs the foreground statistics.
    pub(crate) fn warm_plan(&self, key: &[u8]) -> Option<(u64, u64)> {
        if !self.meta.covers_key(key) || !self.bloom.may_contain(key) {
            return None;
        }
        let (_, off, len) = self.index[self.find_block(key)?];
        (!self.cache.contains((self.meta.file_no, off))).then_some((off, len))
    }

    /// Index of the first block whose last key is ≥ `key`.
    fn find_block(&self, key: &[u8]) -> Option<usize> {
        let idx = self
            .index
            .partition_point(|(last_key, _, _)| last_key.as_slice() < key);
        (idx < self.index.len()).then_some(idx)
    }

    fn load_block(&self, block_idx: usize) -> Result<Arc<Vec<u8>>> {
        let (_, off, len) = self.index[block_idx];
        let cache_key = (self.meta.file_no, off);
        if let Some(block) = self.cache.get(cache_key) {
            return Ok(block);
        }
        let raw = read_region(self.file.as_ref(), &self.path, off, len)?;
        self.metrics.add_bytes_read(len + 4);
        let block = Arc::new(raw);
        self.cache.insert(cache_key, Arc::clone(&block));
        Ok(block)
    }
}

/// Length of the longest common prefix of `a` and `b`.
fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Decodes one prefix-compressed key into `current` (in place).
fn read_block_key(dec: &mut Decoder<'_>, current: &mut Vec<u8>, path: &Path) -> Result<()> {
    let shared = dec.get_varint_u64()? as usize;
    let unshared = dec.get_varint_u64()? as usize;
    if shared > current.len() {
        return Err(StoreError::corruption(
            path,
            0,
            "shared key prefix exceeds previous key",
        ));
    }
    current.truncate(shared);
    current.extend_from_slice(dec.take(unshared, "key suffix")?);
    Ok(())
}

/// Reads and CRC-checks a block region by reopening `path` through
/// `vfs` — the background warm-up path, which cannot share the
/// foreground reader's single-owner file handle across threads.
pub(crate) fn read_region_in(
    vfs: &Arc<dyn Vfs>,
    path: &Path,
    off: u64,
    len: u64,
) -> Result<Vec<u8>> {
    let file = vfs
        .open_read(path)
        .map_err(|e| StoreError::io_at("sst warm open", path, e))?;
    read_region(file.as_ref(), path, off, len)
}

/// Reads a CRC-protected region and verifies its checksum.
fn read_region(file: &dyn VfsFile, path: &Path, off: u64, len: u64) -> Result<Vec<u8>> {
    let mut buf = vec![0u8; len as usize + 4];
    file.read_exact_at(&mut buf, off)
        .map_err(|e| StoreError::io_at("sst region read", path, e))?;
    let crc_stored = u32::from_le_bytes(buf[len as usize..].try_into().expect("fixed"));
    buf.truncate(len as usize);
    if crc32(&buf) != crc_stored {
        return Err(StoreError::corruption(path, off, "block checksum mismatch"));
    }
    Ok(buf)
}

/// Sequential iterator over one table's entries.
pub struct SstIter<'a> {
    reader: &'a SstReader,
    block_idx: usize,
    block: Option<Arc<Vec<u8>>>,
    pos: usize,
    /// Reconstructed key of the previous record in the current block.
    current_key: Vec<u8>,
    skip_until: Option<Vec<u8>>,
}

impl SstIter<'_> {
    /// Returns the next `(key, entry)` pair, or `Ok(None)` at the end.
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Entry)>> {
        loop {
            if self.block.is_none() {
                if self.block_idx >= self.reader.index.len() {
                    return Ok(None);
                }
                self.block = Some(self.reader.load_block(self.block_idx)?);
                self.pos = 0;
                self.current_key.clear();
            }
            let block = self.block.as_ref().expect("just set");
            if self.pos >= block.len() {
                self.block = None;
                self.block_idx += 1;
                continue;
            }
            let mut dec = Decoder::new(&block[self.pos..]);
            read_block_key(&mut dec, &mut self.current_key, &self.reader.path)?;
            let key = self.current_key.clone();
            let entry = Entry::decode_from(&mut dec)?;
            self.pos += dec.position();
            if let Some(bound) = &self.skip_until {
                if key.as_slice() < bound.as_slice() {
                    continue;
                }
                self.skip_until = None;
            }
            return Ok(Some((key, entry)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn build_table(dir: &Path, file_no: u64, n: usize, block: usize) -> SstMeta {
        let path = dir.join(SstMeta::file_name(file_no));
        let mut b = SstBuilder::create(&path, file_no, block).unwrap();
        for i in 0..n {
            let key = format!("key-{i:06}");
            let entry = Entry::Put(format!("value-{i}").into_bytes());
            b.add(key.as_bytes(), &entry).unwrap();
        }
        b.finish().unwrap()
    }

    fn open(dir: &Path, meta: SstMeta) -> SstReader {
        SstReader::open(
            dir,
            meta,
            BlockCache::new(1 << 20),
            StoreMetrics::new_shared(),
        )
        .unwrap()
    }

    #[test]
    fn build_and_point_lookup() {
        let dir = ScratchDir::new("sst-lookup").unwrap();
        let meta = build_table(dir.path(), 1, 1000, 1024);
        assert_eq!(meta.entries, 1000);
        assert_eq!(meta.smallest, b"key-000000".to_vec());
        assert_eq!(meta.largest, b"key-000999".to_vec());
        let r = open(dir.path(), meta);
        for i in (0..1000).step_by(37) {
            let key = format!("key-{i:06}");
            assert_eq!(
                r.get(key.as_bytes()).unwrap(),
                Some(Entry::Put(format!("value-{i}").into_bytes()))
            );
        }
        assert_eq!(r.get(b"key-001000").unwrap(), None);
        assert_eq!(r.get(b"absent").unwrap(), None);
    }

    #[test]
    fn full_iteration_in_order() {
        let dir = ScratchDir::new("sst-iter").unwrap();
        let meta = build_table(dir.path(), 1, 500, 512);
        let r = open(dir.path(), meta);
        let mut it = r.iter();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while let Some((k, _)) = it.next_entry().unwrap() {
            if let Some(p) = &prev {
                assert!(p < &k);
            }
            prev = Some(k);
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn iter_from_seeks_correctly() {
        let dir = ScratchDir::new("sst-seek").unwrap();
        let meta = build_table(dir.path(), 1, 100, 256);
        let r = open(dir.path(), meta);
        let mut it = r.iter_from(b"key-000042");
        let (k, _) = it.next_entry().unwrap().unwrap();
        assert_eq!(k, b"key-000042".to_vec());
        // Seeking between keys starts at the next key.
        let mut it = r.iter_from(b"key-000042x");
        let (k, _) = it.next_entry().unwrap().unwrap();
        assert_eq!(k, b"key-000043".to_vec());
        // Seeking past the end yields nothing.
        let mut it = r.iter_from(b"zzz");
        assert!(it.next_entry().unwrap().is_none());
    }

    #[test]
    fn overlap_predicates() {
        let meta = SstMeta {
            file_no: 1,
            size: 0,
            smallest: b"b".to_vec(),
            largest: b"m".to_vec(),
            entries: 0,
        };
        assert!(meta.overlaps_range(b"a", b"c"));
        assert!(meta.overlaps_range(b"m", b"z"));
        assert!(!meta.overlaps_range(b"n", b"z"));
        assert!(!meta.overlaps_range(b"a", b"b"));
        assert!(meta.covers_key(b"b"));
        assert!(meta.covers_key(b"m"));
        assert!(!meta.covers_key(b"a"));
    }

    #[test]
    fn corrupted_block_detected() {
        let dir = ScratchDir::new("sst-corrupt").unwrap();
        let meta = build_table(dir.path(), 1, 100, 256);
        let path = dir.path().join(SstMeta::file_name(1));
        let mut data = std::fs::read(&path).unwrap();
        data[10] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let r = open(dir.path(), meta);
        let err = r.get(b"key-000000").unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn cache_serves_repeated_reads() {
        let dir = ScratchDir::new("sst-cache").unwrap();
        let meta = build_table(dir.path(), 1, 100, 4096);
        let metrics = StoreMetrics::new_shared();
        let r = SstReader::open(
            dir.path(),
            meta,
            BlockCache::new(1 << 20),
            Arc::clone(&metrics),
        )
        .unwrap();
        r.get(b"key-000001").unwrap();
        let after_first = metrics.snapshot().bytes_read;
        r.get(b"key-000002").unwrap();
        assert_eq!(metrics.snapshot().bytes_read, after_first);
    }

    #[test]
    fn prefix_compression_shrinks_shared_keys() {
        // Long keys sharing a 60-byte prefix: with per-block prefix
        // compression the file must be far smaller than the raw key bytes.
        let dir = ScratchDir::new("sst-prefix").unwrap();
        let path = dir.path().join(SstMeta::file_name(9));
        let mut b = SstBuilder::create(&path, 9, 4096).unwrap();
        let prefix = "shared-prefix-".repeat(5);
        let n = 1_000;
        for i in 0..n {
            let key = format!("{prefix}{i:06}");
            b.add(key.as_bytes(), &Entry::Put(vec![1])).unwrap();
        }
        let meta = b.finish().unwrap();
        let raw_key_bytes = (prefix.len() + 6) * n;
        assert!(
            (meta.size as usize) < raw_key_bytes / 2,
            "file {} bytes vs {} raw key bytes",
            meta.size,
            raw_key_bytes
        );
        // And everything still reads back.
        let r = open(dir.path(), meta);
        for i in (0..n).step_by(97) {
            let key = format!("{prefix}{i:06}");
            assert_eq!(
                r.get(key.as_bytes()).unwrap(),
                Some(Entry::Put(vec![1])),
                "key {i}"
            );
        }
        let mut it = r.iter_from(format!("{prefix}000500").as_bytes());
        let (k, _) = it.next_entry().unwrap().unwrap();
        assert_eq!(k, format!("{prefix}000500").into_bytes());
    }

    #[test]
    fn merge_entries_survive_roundtrip() {
        let dir = ScratchDir::new("sst-merge").unwrap();
        let path = dir.path().join(SstMeta::file_name(7));
        let mut b = SstBuilder::create(&path, 7, 512).unwrap();
        let entry = Entry::Merge(vec![b"a".to_vec(), b"b".to_vec()]);
        b.add(b"k", &entry).unwrap();
        let meta = b.finish().unwrap();
        let r = open(dir.path(), meta);
        assert_eq!(r.get(b"k").unwrap(), Some(entry));
    }
}
