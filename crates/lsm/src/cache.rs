//! A least-recently-used cache for decoded SSTable blocks.
//!
//! RocksDB serves repeated point lookups from its block cache; the cache
//! here plays the same role so the baseline's read path is not unfairly
//! penalized. Capacity is accounted in payload bytes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Identifies one block: the owning file number and its byte offset.
pub type BlockKey = (u64, u64);

/// A byte-bounded LRU cache of immutable blocks.
pub struct BlockCache {
    inner: Mutex<CacheInner>,
}

struct CacheInner {
    map: HashMap<BlockKey, (Arc<Vec<u8>>, u64)>,
    // LRU order: front is oldest. `u64` is an access stamp.
    stamp: u64,
    bytes: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// Creates a cache bounded at `capacity` bytes.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(BlockCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                stamp: 0,
                bytes: 0,
                capacity,
                hits: 0,
                misses: 0,
            }),
        })
    }

    /// Looks up a block, refreshing its recency on hit.
    pub fn get(&self, key: BlockKey) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.map.get_mut(&key) {
            Some((block, last_used)) => {
                *last_used = stamp;
                let out = Arc::clone(block);
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is resident, without touching recency or the
    /// hit/miss counters — the background warm-up planner's probe.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.inner.lock().map.contains_key(&key)
    }

    /// Inserts a block, evicting least-recently-used blocks as needed.
    pub fn insert(&self, key: BlockKey, block: Arc<Vec<u8>>) {
        let mut inner = self.inner.lock();
        if block.len() > inner.capacity {
            return;
        }
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some((old, _)) = inner.map.insert(key, (Arc::clone(&block), stamp)) {
            inner.bytes -= old.len();
        }
        inner.bytes += block.len();
        while inner.bytes > inner.capacity {
            // Evict the entry with the smallest access stamp. Linear scan
            // keeps the structure simple; caches hold few, large blocks.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some((old, _)) = inner.map.remove(&k) {
                        inner.bytes -= old.len();
                    }
                }
                None => break,
            }
        }
    }

    /// Drops every block belonging to `file_no` (called when a file is
    /// deleted by compaction).
    pub fn evict_file(&self, file_no: u64) {
        let mut inner = self.inner.lock();
        let keys: Vec<BlockKey> = inner
            .map
            .keys()
            .filter(|(f, _)| *f == file_no)
            .copied()
            .collect();
        for k in keys {
            if let Some((old, _)) = inner.map.remove(&k) {
                inner.bytes -= old.len();
            }
        }
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Bytes currently cached.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn hit_and_miss() {
        let c = BlockCache::new(1024);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), block(10));
        assert!(c.get((1, 0)).is_some());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity_and_recency() {
        let c = BlockCache::new(100);
        c.insert((1, 0), block(40));
        c.insert((1, 1), block(40));
        // Touch the first block so the second becomes LRU.
        assert!(c.get((1, 0)).is_some());
        c.insert((1, 2), block(40));
        assert!(c.bytes() <= 100);
        assert!(c.get((1, 0)).is_some(), "recently used block evicted");
        assert!(c.get((1, 1)).is_none(), "LRU block survived");
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let c = BlockCache::new(10);
        c.insert((1, 0), block(100));
        assert!(c.get((1, 0)).is_none());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn evict_file_removes_all_its_blocks() {
        let c = BlockCache::new(1024);
        c.insert((1, 0), block(10));
        c.insert((1, 8), block(10));
        c.insert((2, 0), block(10));
        c.evict_file(1);
        assert!(c.get((1, 0)).is_none());
        assert!(c.get((1, 8)).is_none());
        assert!(c.get((2, 0)).is_some());
    }
}
