//! The sorted in-memory write buffer of the LSM tree.
//!
//! Keys live in a `BTreeMap`, mirroring RocksDB's sorted memtable — the
//! per-write ordering work is precisely the CPU overhead the FlowKV paper
//! measures against (§2.2). Merge operands accumulate in place, so an
//! `Append()`-heavy workload pays O(log n) to locate the key and O(1) to
//! extend its operand list.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::entry::Entry;

/// Sorted write buffer holding the newest state of each key.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, Entry>,
    approx_bytes: usize,
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Writes a full value, shadowing any previous state of `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.insert(key, Entry::Put(value.to_vec()));
    }

    /// Writes a tombstone for `key`.
    pub fn delete(&mut self, key: &[u8]) {
        self.insert(key, Entry::Delete);
    }

    /// Appends a merge operand to `key`.
    pub fn merge(&mut self, key: &[u8], operand: &[u8]) {
        self.approx_bytes += operand.len() + 16;
        match self.map.get_mut(key) {
            Some(entry) => entry.push_operand(operand.to_vec()),
            None => {
                self.approx_bytes += key.len() + 32;
                self.map
                    .insert(key.to_vec(), Entry::Merge(vec![operand.to_vec()]));
            }
        }
    }

    /// Returns the newest entry for `key`, if any.
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.map.get(key)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no keys are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Entry)> {
        self.map.iter()
    }

    /// Iterates entries with keys in `[start, end)` in key order.
    pub fn range(&self, start: &[u8], end: &[u8]) -> impl Iterator<Item = (&Vec<u8>, &Entry)> {
        self.map
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
    }

    /// Consumes the memtable, yielding entries in key order.
    pub fn into_sorted(self) -> impl Iterator<Item = (Vec<u8>, Entry)> {
        self.map.into_iter()
    }

    /// Removes all contents.
    pub fn clear(&mut self) {
        self.map.clear();
        self.approx_bytes = 0;
    }

    fn insert(&mut self, key: &[u8], entry: Entry) {
        self.approx_bytes += entry.memory_size() + 16;
        if let Some(old) = self.map.insert(key.to_vec(), entry) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.memory_size());
        } else {
            self.approx_bytes += key.len() + 32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Resolved;

    #[test]
    fn put_get_overwrite() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        m.put(b"a", b"2");
        assert_eq!(m.get(b"a"), Some(&Entry::Put(b"2".to_vec())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn merge_accumulates_in_order() {
        let mut m = MemTable::new();
        m.merge(b"k", b"a");
        m.merge(b"k", b"b");
        m.merge(b"k", b"c");
        let resolved = m.get(b"k").unwrap().clone().resolve();
        assert_eq!(
            resolved,
            Resolved::List(vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()])
        );
    }

    #[test]
    fn delete_then_merge_keeps_tombstone_base() {
        let mut m = MemTable::new();
        m.put(b"k", b"old");
        m.delete(b"k");
        m.merge(b"k", b"new");
        assert_eq!(
            m.get(b"k"),
            Some(&Entry::DeleteMerge(vec![b"new".to_vec()]))
        );
    }

    #[test]
    fn range_is_sorted_and_half_open() {
        let mut m = MemTable::new();
        for k in [b"b" as &[u8], b"a", b"d", b"c"] {
            m.put(k, b"v");
        }
        let keys: Vec<&[u8]> = m.range(b"b", b"d").map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"b" as &[u8], b"c"]);
    }

    #[test]
    fn size_tracking_grows_and_clears() {
        let mut m = MemTable::new();
        assert_eq!(m.approximate_bytes(), 0);
        m.put(b"key", &[0u8; 100]);
        assert!(m.approximate_bytes() >= 100);
        m.merge(b"key2", &[0u8; 50]);
        let before = m.approximate_bytes();
        assert!(before >= 150);
        m.clear();
        assert_eq!(m.approximate_bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn into_sorted_yields_key_order() {
        let mut m = MemTable::new();
        m.put(b"z", b"1");
        m.put(b"a", b"2");
        m.merge(b"m", b"3");
        let keys: Vec<Vec<u8>> = m.into_sorted().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"m".to_vec(), b"z".to_vec()]);
    }
}
