//! An LSM-tree key-value store: the RocksDB-analog baseline.
//!
//! The FlowKV paper evaluates Flink on RocksDB as the representative
//! *sorted* persistent KV store (§2.2). This crate reproduces the parts of
//! RocksDB that determine its behaviour under streaming state workloads:
//!
//! - a sorted in-memory **memtable** with merge operands ([`memtable`]),
//!   giving RocksDB's *lazy merging* of `Append()` values;
//! - immutable, block-based, bloom-filtered **SSTables** ([`sstable`]);
//! - **leveled compaction** with merging iterators ([`compaction`],
//!   [`iter`]) — the background CPU cost the paper attributes to RocksDB;
//! - a **block cache** ([`cache`]);
//! - a [`db::Db`] façade and a [`backend::LsmBackend`] adapter that maps
//!   the window-state contract onto plain KV operations by encoding
//!   `(window, key)` composite keys, exactly as Flink's RocksDB state
//!   backend does.
//!
//! Write-ahead logging is intentionally absent: stream processing engines
//! disable KV-store WALs and rely on checkpoint + source replay for fault
//! tolerance (paper §8).

pub mod backend;
pub mod bloom;
pub mod cache;
pub mod compaction;
pub mod db;
pub mod entry;
pub mod iter;
pub mod memtable;
pub mod sstable;
pub mod version;

pub use backend::{LsmBackend, LsmBackendFactory};
pub use db::{Db, DbConfig};
