//! The LSM database façade: write path, read path, and compaction policy.
//!
//! Everything is synchronous and single-writer, matching the engine's
//! one-store-per-partition deployment (paper §2.1): when the memtable
//! fills, the flush happens inline; when a level overflows, the compaction
//! happens inline. The time those take is charged to the metrics block so
//! the paper's CPU-breakdown figures can be regenerated.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::error::{Result, StoreError};
use flowkv_common::ioring::{IoOutcome, IoRing};
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::cache::BlockCache;
use crate::compaction::{compact_in, CompactionParams};
use crate::entry::{Entry, Resolved};
use crate::iter::{EntrySource, MergingIter, VecSource};
use crate::memtable::MemTable;
use crate::sstable::{read_region_in, SstMeta, SstReader};
use crate::version::{Version, MAX_LEVELS};

/// Tuning knobs of the LSM tree.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Flush the memtable when it reaches this many bytes.
    pub write_buffer_bytes: usize,
    /// Data-block target size inside SSTables.
    pub block_size: usize,
    /// Byte capacity of the shared block cache.
    pub block_cache_bytes: usize,
    /// Compact level 0 when it accumulates this many files.
    pub l0_compaction_trigger: usize,
    /// Byte budget of level 1; each deeper level is `level_multiplier`
    /// times larger.
    pub level_base_bytes: u64,
    /// Growth factor between adjacent levels.
    pub level_multiplier: u64,
    /// Split compaction outputs at this file size.
    pub target_file_size: u64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            write_buffer_bytes: 4 << 20,
            block_size: 4096,
            block_cache_bytes: 8 << 20,
            l0_compaction_trigger: 4,
            level_base_bytes: 16 << 20,
            level_multiplier: 8,
            target_file_size: 2 << 20,
        }
    }
}

impl DbConfig {
    /// A configuration scaled down for unit tests: small buffers force
    /// flushes and compactions with little data.
    pub fn small_for_tests() -> Self {
        DbConfig {
            write_buffer_bytes: 16 << 10,
            block_size: 1024,
            block_cache_bytes: 64 << 10,
            l0_compaction_trigger: 3,
            level_base_bytes: 64 << 10,
            level_multiplier: 4,
            target_file_size: 32 << 10,
        }
    }
}

/// One page of scan results plus the key to resume from, if any.
pub type ScanPage = (Vec<(Vec<u8>, Resolved)>, Option<Vec<u8>>);

/// An LSM-tree key-value store over one directory.
///
/// # Examples
///
/// ```
/// use flowkv_lsm::{Db, DbConfig};
/// use flowkv_lsm::entry::Resolved;
/// use flowkv_common::scratch::ScratchDir;
///
/// let dir = ScratchDir::new("lsm-doc").unwrap();
/// let mut db = Db::open(dir.path(), DbConfig::default()).unwrap();
/// db.put(b"k", b"v").unwrap();
/// assert_eq!(db.get(b"k").unwrap(), Resolved::Value(b"v".to_vec()));
/// db.merge(b"list", b"a").unwrap();
/// db.merge(b"list", b"b").unwrap();
/// assert_eq!(
///     db.get(b"list").unwrap(),
///     Resolved::List(vec![b"a".to_vec(), b"b".to_vec()])
/// );
/// ```
pub struct Db {
    dir: PathBuf,
    cfg: DbConfig,
    vfs: Arc<dyn Vfs>,
    mem: MemTable,
    version: Version,
    readers: HashMap<u64, SstReader>,
    cache: Arc<BlockCache>,
    metrics: Arc<StoreMetrics>,
    /// Round-robin pointers choosing the next file to push down per level.
    compaction_cursor: Vec<usize>,
    /// Background ring for block warm-up reads, when configured.
    ring: Option<Arc<IoRing>>,
    ring_tag: u64,
    /// In-flight warm reads: job id → `(file_no, offset, length)`.
    warm_inflight: HashMap<u64, (u64, u64, u64)>,
    /// Blocks with a warm read outstanding, to suppress resubmission.
    warm_pending: HashSet<(u64, u64)>,
}

impl Db {
    /// Opens (or creates) a database in `dir`.
    pub fn open(dir: impl AsRef<Path>, cfg: DbConfig) -> Result<Self> {
        Self::open_with_metrics(dir, cfg, StoreMetrics::new_shared())
    }

    /// Opens a database charging its work to an external metrics block.
    pub fn open_with_metrics(
        dir: impl AsRef<Path>,
        cfg: DbConfig,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        Self::open_with_vfs(dir, cfg, metrics, StdVfs::shared())
    }

    /// Opens a database whose every file operation goes through `vfs`.
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        cfg: DbConfig,
        metrics: Arc<StoreMetrics>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)
            .map_err(|e| StoreError::io_at("db create dir", &dir, e))?;
        let version = Version::load_in(&vfs, &dir)?;
        let cache = BlockCache::new(cfg.block_cache_bytes);
        let mut db = Db {
            dir,
            cfg,
            vfs,
            mem: MemTable::new(),
            version,
            readers: HashMap::new(),
            cache,
            metrics,
            compaction_cursor: vec![0; MAX_LEVELS],
            ring: None,
            ring_tag: 0,
            warm_inflight: HashMap::new(),
            warm_pending: HashSet::new(),
        };
        for meta in db
            .version
            .levels
            .iter()
            .flatten()
            .cloned()
            .collect::<Vec<_>>()
        {
            db.ensure_reader(&meta)?;
        }
        Ok(db)
    }

    /// Writes a full value for `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.mem.put(key, value);
        self.maybe_flush()
    }

    /// Appends a merge operand to `key` (RocksDB's lazy merging).
    pub fn merge(&mut self, key: &[u8], operand: &[u8]) -> Result<()> {
        self.mem.merge(key, operand);
        self.maybe_flush()
    }

    /// Deletes `key` by writing a tombstone.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.mem.delete(key);
        self.maybe_flush()
    }

    /// Resolves the current state of `key`.
    pub fn get(&mut self, key: &[u8]) -> Result<Resolved> {
        // Install any warm blocks that completed since the last probe so
        // reads inside the same batch as their hint can already hit.
        self.drain_warm()?;
        let mut acc: Option<Entry> = self.mem.get(key).cloned();
        if !acc.as_ref().is_some_and(Entry::is_terminal) {
            'levels: for level in 0..self.version.levels.len() {
                let candidates: Vec<SstMeta> = if level == 0 {
                    self.version.levels[0].clone()
                } else {
                    // Deeper levels have disjoint ranges: at most one file.
                    self.version.levels[level]
                        .iter()
                        .find(|m| m.covers_key(key))
                        .cloned()
                        .into_iter()
                        .collect()
                };
                for meta in candidates {
                    let reader = self.ensure_reader(&meta)?;
                    if let Some(entry) = reader.get(key)? {
                        let newer_is_terminal = acc.as_ref().is_some_and(Entry::is_terminal);
                        debug_assert!(!newer_is_terminal);
                        acc = Some(match acc {
                            None => entry,
                            Some(newer) => Entry::combine(newer, entry),
                        });
                        if acc.as_ref().is_some_and(Entry::is_terminal) {
                            break 'levels;
                        }
                    }
                }
            }
        }
        Ok(match acc {
            Some(entry) => entry.resolve(),
            None => Resolved::Absent,
        })
    }

    /// Scans keys in `[start, end)`, resolving up to `limit` live entries.
    ///
    /// Returns the resolved pairs and, when the limit stopped the scan
    /// early, the key at which to resume.
    pub fn scan(&mut self, start: &[u8], end: &[u8], limit: usize) -> Result<ScanPage> {
        // Snapshot the memtable range (bounded by `end`).
        let mem_pairs: Vec<(Vec<u8>, Entry)> = self
            .mem
            .range(start, end)
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect();
        let mut sources: Vec<Box<dyn EntrySource + '_>> = vec![Box::new(VecSource::new(mem_pairs))];
        // Level 0 newest-first, then deeper levels.
        let metas: Vec<SstMeta> = self
            .version
            .levels
            .iter()
            .flatten()
            .filter(|m| m.overlaps_range(start, end))
            .cloned()
            .collect();
        for meta in &metas {
            self.ensure_reader(meta)?;
        }
        for meta in &metas {
            let reader = self.readers.get(&meta.file_no).expect("ensured above");
            sources.push(Box::new(reader.iter_from(start)));
        }
        let mut merging = MergingIter::new(sources)?;
        let mut out = Vec::new();
        while let Some((key, entry)) = merging.next_combined()? {
            if key.as_slice() >= end {
                break;
            }
            match entry.resolve() {
                Resolved::Absent => continue,
                resolved => {
                    out.push((key.clone(), resolved));
                    if out.len() >= limit {
                        // Resume strictly after the last returned key.
                        let mut resume = key;
                        resume.push(0);
                        let more = resume.as_slice() < end;
                        return Ok((out, more.then_some(resume)));
                    }
                }
            }
        }
        Ok((out, None))
    }

    /// Flushes the memtable to a new level-0 table file.
    pub fn flush(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let _t = self.metrics.timer(OpCategory::Write);
        let mem = std::mem::take(&mut self.mem);
        let pairs: Vec<(Vec<u8>, Entry)> = mem.into_sorted().collect();
        let mut next = self.version.next_file_no;
        let outputs = compact_in(
            &self.vfs,
            MergingIter::new(vec![Box::new(VecSource::new(pairs))])?,
            &self.dir,
            &mut next,
            &CompactionParams {
                // One flush produces one L0 file.
                target_file_size: u64::MAX,
                block_size: self.cfg.block_size,
                bottom: false,
            },
        )?;
        self.version.next_file_no = next;
        for meta in outputs {
            self.metrics.add_bytes_written(meta.size);
            self.ensure_reader(&meta)?;
            self.version.levels[0].insert(0, meta);
        }
        self.metrics.add_flush();
        self.version.save_in(&self.vfs, &self.dir)?;
        drop(_t);
        self.maybe_compact()
    }

    /// Runs compactions until every level is within its budget.
    pub fn maybe_compact(&mut self) -> Result<()> {
        loop {
            if self.version.levels[0].len() >= self.cfg.l0_compaction_trigger {
                self.compact_l0()?;
                continue;
            }
            let mut compacted = false;
            for level in 1..MAX_LEVELS - 1 {
                if self.version.level_bytes(level) > self.level_limit(level) {
                    self.compact_level(level)?;
                    compacted = true;
                    break;
                }
            }
            if !compacted {
                return Ok(());
            }
        }
    }

    /// Bytes currently buffered in the memtable.
    pub fn memory_bytes(&self) -> usize {
        self.mem.approximate_bytes()
    }

    /// The metrics block charged by this database.
    pub fn metrics(&self) -> Arc<StoreMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The live version (level layout), for inspection in tests.
    pub fn version(&self) -> &Version {
        &self.version
    }

    /// Attaches a background I/O ring; subsequent [`Db::warm_batch`]
    /// calls schedule block reads on it under `tag`.
    pub fn set_ring(&mut self, ring: Arc<IoRing>, tag: u64) {
        self.ring = Some(ring);
        self.ring_tag = tag;
    }

    /// Whether a background ring is attached.
    pub fn has_ring(&self) -> bool {
        self.ring.is_some()
    }

    /// Schedules background reads of the uncached blocks a `get` of each
    /// key would touch, walking the same level order as [`Db::get`].
    /// Purely advisory: a warm that fails, arrives late, or races a
    /// compaction is discarded and the foreground read proceeds as if it
    /// never happened. No-op without a ring.
    pub fn warm_batch(&mut self, keys: &[Vec<u8>]) -> Result<()> {
        if self.ring.is_none() {
            return Ok(());
        }
        self.drain_warm()?;
        for key in keys {
            if self.mem.get(key).is_some_and(Entry::is_terminal) {
                continue;
            }
            let mut metas: Vec<SstMeta> = self.version.levels[0]
                .iter()
                .filter(|m| m.covers_key(key))
                .cloned()
                .collect();
            for level in 1..self.version.levels.len() {
                if let Some(m) = self.version.levels[level]
                    .iter()
                    .find(|m| m.covers_key(key))
                {
                    metas.push(m.clone());
                }
            }
            for meta in metas {
                let Some((off, len)) = self.ensure_reader(&meta)?.warm_plan(key) else {
                    continue;
                };
                if !self.warm_pending.insert((meta.file_no, off)) {
                    continue;
                }
                let path = self.dir.join(SstMeta::file_name(meta.file_no));
                let ring = self.ring.as_ref().expect("checked above");
                let id = ring.submit(
                    self.ring_tag,
                    Box::new(move |vfs: &Arc<dyn Vfs>| {
                        read_region_in(vfs, &path, off, len)
                            .map(|raw| Box::new(raw) as Box<dyn Any + Send>)
                            .map_err(|e| std::io::Error::other(e.to_string()))
                    }),
                );
                self.warm_inflight.insert(id, (meta.file_no, off, len));
            }
        }
        Ok(())
    }

    /// Installs completed warm reads into the block cache. Re-raises a
    /// panic captured by a background job (an injected crash fault) on
    /// the calling thread.
    pub fn drain_warm(&mut self) -> Result<()> {
        let Some(ring) = &self.ring else {
            return Ok(());
        };
        let done = ring.drain_tag(self.ring_tag);
        if done.is_empty() {
            return Ok(());
        }
        let live: HashSet<u64> = self.version.all_file_nos().into_iter().collect();
        let mut installed = 0i64;
        let mut wasted = 0i64;
        for completion in done {
            let Some((file_no, off, len)) = self.warm_inflight.remove(&completion.id) else {
                continue;
            };
            self.warm_pending.remove(&(file_no, off));
            match completion.into_result() {
                // A compaction may have retired the file while the read
                // was in flight; file numbers are never reused, so the
                // stale block could never be read again — drop it.
                Ok(payload) if live.contains(&file_no) => {
                    let raw = *payload
                        .downcast::<Vec<u8>>()
                        .expect("warm job yields bytes");
                    self.metrics.add_bytes_read(len + 4);
                    self.cache.insert((file_no, off), Arc::new(raw));
                    installed += 1;
                }
                Ok(_) => wasted += len as i64,
                // A failed warm is only a missed warm: if the foreground
                // actually needs the block, its own read surfaces the
                // error with full context.
                Err(_) => {}
            }
        }
        if installed > 0 {
            flowkv_common::trace::instant_here(
                "prefetch_install",
                "prefetch",
                &[("blocks", installed)],
            );
        }
        if wasted > 0 {
            flowkv_common::trace::instant_here("prefetch_waste", "prefetch", &[("bytes", wasted)]);
        }
        Ok(())
    }

    /// Waits out every in-flight warm read and discards the results,
    /// re-raising captured crash-fault panics. Called before operations
    /// that invalidate the file set the reads were planned against.
    fn abandon_warm(&mut self) {
        let Some(ring) = &self.ring else {
            return;
        };
        for (id, _) in self.warm_inflight.drain() {
            if let IoOutcome::Panicked(payload) = ring.wait(id).outcome {
                std::panic::resume_unwind(payload);
            }
        }
        self.warm_pending.clear();
    }

    /// Copies a consistent snapshot of the database into `dst`.
    pub fn checkpoint(&mut self, dst: &Path) -> Result<()> {
        self.flush()?;
        self.vfs
            .create_dir_all(dst)
            .map_err(|e| StoreError::io_at("checkpoint dir", dst, e))?;
        for file_no in self.version.all_file_nos() {
            let name = SstMeta::file_name(file_no);
            let from = self.dir.join(&name);
            let to = dst.join(&name);
            // Hard links make checkpoints cheap; the VFS falls back to
            // copying across filesystems.
            self.vfs
                .link_or_copy(&from, &to)
                .map_err(|e| StoreError::io_at("checkpoint copy", &to, e))?;
        }
        self.version.save_in(&self.vfs, dst)?;
        Ok(())
    }

    /// Replaces the database contents with the snapshot in `src`.
    pub fn restore(&mut self, src: &Path) -> Result<()> {
        self.abandon_warm();
        self.mem.clear();
        for file_no in self.version.all_file_nos() {
            let _ = self
                .vfs
                .remove_file(&self.dir.join(SstMeta::file_name(file_no)));
            self.cache.evict_file(file_no);
        }
        self.readers.clear();
        let version = Version::load_in(&self.vfs, src)?;
        for file_no in version.all_file_nos() {
            let name = SstMeta::file_name(file_no);
            let from = src.join(&name);
            let to = self.dir.join(&name);
            self.vfs
                .link_or_copy(&from, &to)
                .map_err(|e| StoreError::io_at("restore copy", &to, e))?;
        }
        self.version = version;
        self.version.save_in(&self.vfs, &self.dir)?;
        for meta in self
            .version
            .levels
            .iter()
            .flatten()
            .cloned()
            .collect::<Vec<_>>()
        {
            self.ensure_reader(&meta)?;
        }
        Ok(())
    }

    /// Deletes every file of the database.
    pub fn destroy(&mut self) -> Result<()> {
        self.abandon_warm();
        self.mem.clear();
        self.readers.clear();
        for file_no in self.version.all_file_nos() {
            let _ = self
                .vfs
                .remove_file(&self.dir.join(SstMeta::file_name(file_no)));
        }
        let _ = self
            .vfs
            .remove_file(&self.dir.join(crate::version::MANIFEST_NAME));
        self.version = Version::new();
        Ok(())
    }

    fn level_limit(&self, level: usize) -> u64 {
        self.cfg.level_base_bytes * self.cfg.level_multiplier.pow(level as u32 - 1)
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.mem.approximate_bytes() >= self.cfg.write_buffer_bytes {
            self.flush()?;
        }
        Ok(())
    }

    fn ensure_reader(&mut self, meta: &SstMeta) -> Result<&SstReader> {
        if !self.readers.contains_key(&meta.file_no) {
            let reader = SstReader::open_in(
                &self.vfs,
                &self.dir,
                meta.clone(),
                Arc::clone(&self.cache),
                Arc::clone(&self.metrics),
            )?;
            self.readers.insert(meta.file_no, reader);
        }
        Ok(self.readers.get(&meta.file_no).expect("just inserted"))
    }

    /// Merges all of level 0 plus overlapping level-1 files into level 1.
    fn compact_l0(&mut self) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Compaction);
        let l0: Vec<SstMeta> = self.version.levels[0].clone();
        let smallest = l0
            .iter()
            .map(|m| m.smallest.clone())
            .min()
            .unwrap_or_default();
        let largest = l0
            .iter()
            .map(|m| m.largest.clone())
            .max()
            .unwrap_or_default();
        let l1 = self.version.overlapping_files(1, &smallest, &largest);
        let inputs: Vec<SstMeta> = l0.iter().chain(l1.iter()).cloned().collect();
        self.run_compaction(&inputs, 1)
    }

    /// Pushes one file of `level` down into `level + 1`.
    fn compact_level(&mut self, level: usize) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Compaction);
        let files = &self.version.levels[level];
        if files.is_empty() {
            return Ok(());
        }
        let cursor = self.compaction_cursor[level] % files.len();
        self.compaction_cursor[level] = cursor + 1;
        let victim = files[cursor].clone();
        let below = self
            .version
            .overlapping_files(level + 1, &victim.smallest, &victim.largest);
        let inputs: Vec<SstMeta> = std::iter::once(victim).chain(below).collect();
        self.run_compaction(&inputs, level + 1)
    }

    /// Shared compaction driver: merge `inputs` (ordered newest-first)
    /// into `output_level`, then install the result.
    fn run_compaction(&mut self, inputs: &[SstMeta], output_level: usize) -> Result<()> {
        for meta in inputs {
            self.ensure_reader(meta)?;
        }
        // Tombstones may be dropped only when nothing older can exist:
        // every deeper level is empty (overlapping files at the output
        // level are always part of the inputs).
        let bottom = self.version.is_bottom(output_level);
        let sources: Vec<Box<dyn EntrySource + '_>> = inputs
            .iter()
            .map(|meta| {
                let reader = self.readers.get(&meta.file_no).expect("ensured above");
                Box::new(reader.iter()) as Box<dyn EntrySource + '_>
            })
            .collect();
        let merging = MergingIter::new(sources)?;
        let mut next = self.version.next_file_no;
        let outputs = compact_in(
            &self.vfs,
            merging,
            &self.dir,
            &mut next,
            &CompactionParams {
                target_file_size: self.cfg.target_file_size,
                block_size: self.cfg.block_size,
                bottom,
            },
        )?;
        let input_bytes: u64 = inputs.iter().map(|m| m.size).sum();
        let output_bytes: u64 = outputs.iter().map(|m| m.size).sum();
        self.metrics.add_bytes_read(input_bytes);
        self.metrics.add_bytes_written(output_bytes);
        self.metrics.add_compaction();

        // Install: drop inputs, add outputs to the target level.
        self.version.next_file_no = next;
        let input_nos: Vec<u64> = inputs.iter().map(|m| m.file_no).collect();
        self.version.remove_files(&input_nos);
        for meta in outputs {
            self.ensure_reader(&meta)?;
            self.version.insert_sorted(output_level, meta);
        }
        self.version.save_in(&self.vfs, &self.dir)?;
        for no in input_nos {
            self.readers.remove(&no);
            self.cache.evict_file(no);
            let _ = self.vfs.remove_file(&self.dir.join(SstMeta::file_name(no)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn open_small(dir: &Path) -> Db {
        Db::open(dir, DbConfig::small_for_tests()).unwrap()
    }

    #[test]
    fn put_get_across_flush() {
        let dir = ScratchDir::new("db-putget").unwrap();
        let mut db = open_small(dir.path());
        for i in 0..500u32 {
            db.put(format!("key-{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        db.flush().unwrap();
        for i in (0..500u32).step_by(17) {
            assert_eq!(
                db.get(format!("key-{i:05}").as_bytes()).unwrap(),
                Resolved::Value(i.to_le_bytes().to_vec())
            );
        }
        assert_eq!(db.get(b"missing").unwrap(), Resolved::Absent);
    }

    #[test]
    fn merge_survives_flush_and_compaction() {
        let dir = ScratchDir::new("db-merge").unwrap();
        let mut db = open_small(dir.path());
        for round in 0..10u32 {
            for key in 0..20u32 {
                let k = format!("key-{key:03}");
                db.merge(k.as_bytes(), format!("v{round}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
        }
        for key in 0..20u32 {
            let k = format!("key-{key:03}");
            match db.get(k.as_bytes()).unwrap() {
                Resolved::List(vals) => {
                    let expect: Vec<Vec<u8>> =
                        (0..10).map(|r| format!("v{r}").into_bytes()).collect();
                    assert_eq!(vals, expect, "key {k}");
                }
                other => panic!("expected list, got {other:?}"),
            }
        }
        // Flush-triggered compactions must have run.
        assert!(db.metrics().snapshot().compactions > 0);
    }

    #[test]
    fn delete_hides_value_after_flushes() {
        let dir = ScratchDir::new("db-delete").unwrap();
        let mut db = open_small(dir.path());
        db.put(b"k", b"v").unwrap();
        db.flush().unwrap();
        db.delete(b"k").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap(), Resolved::Absent);
    }

    #[test]
    fn newer_level0_shadows_older() {
        let dir = ScratchDir::new("db-shadow").unwrap();
        let mut db = open_small(dir.path());
        db.put(b"k", b"old").unwrap();
        db.flush().unwrap();
        db.put(b"k", b"new").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap(), Resolved::Value(b"new".to_vec()));
    }

    #[test]
    fn scan_merges_all_sources() {
        let dir = ScratchDir::new("db-scan").unwrap();
        let mut db = open_small(dir.path());
        db.put(b"a", b"1").unwrap();
        db.flush().unwrap();
        db.put(b"c", b"3").unwrap();
        db.flush().unwrap();
        db.put(b"b", b"2").unwrap();
        db.delete(b"c").unwrap();

        let (items, next) = db.scan(b"a", b"z", 100).unwrap();
        assert!(next.is_none());
        let keys: Vec<&[u8]> = items.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b"]);
    }

    #[test]
    fn scan_respects_limit_and_resumes() {
        let dir = ScratchDir::new("db-scanlimit").unwrap();
        let mut db = open_small(dir.path());
        for i in 0..50u32 {
            db.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        let (first, resume) = db.scan(b"k", b"l", 20).unwrap();
        assert_eq!(first.len(), 20);
        let resume = resume.expect("should have more");
        let (second, _) = db.scan(&resume, b"l", 100).unwrap();
        assert_eq!(second.len(), 30);
        assert!(first.last().unwrap().0 < second.first().unwrap().0);
    }

    #[test]
    fn reopen_recovers_persisted_state() {
        let dir = ScratchDir::new("db-reopen").unwrap();
        {
            let mut db = open_small(dir.path());
            db.put(b"persisted", b"yes").unwrap();
            db.flush().unwrap();
        }
        let mut db = open_small(dir.path());
        assert_eq!(
            db.get(b"persisted").unwrap(),
            Resolved::Value(b"yes".to_vec())
        );
    }

    #[test]
    fn heavy_writes_spread_over_levels() {
        let dir = ScratchDir::new("db-levels").unwrap();
        let mut db = open_small(dir.path());
        for i in 0..3000u32 {
            db.put(format!("key-{:05}", i % 1000).as_bytes(), &[0u8; 64])
                .unwrap();
        }
        db.flush().unwrap();
        // All data must remain readable regardless of layout.
        for i in 0..1000u32 {
            assert_ne!(
                db.get(format!("key-{i:05}").as_bytes()).unwrap(),
                Resolved::Absent,
                "key {i} lost"
            );
        }
        assert!(db.version().levels[0].len() < DbConfig::small_for_tests().l0_compaction_trigger);
    }

    #[test]
    fn checkpoint_and_restore() {
        let dir = ScratchDir::new("db-ckpt").unwrap();
        let ckpt = ScratchDir::new("db-ckpt-dst").unwrap();
        let mut db = open_small(dir.path());
        db.put(b"a", b"1").unwrap();
        db.checkpoint(ckpt.path()).unwrap();
        db.put(b"b", b"2").unwrap();
        db.flush().unwrap();
        db.restore(ckpt.path()).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Resolved::Value(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), Resolved::Absent);
    }

    #[test]
    fn warm_batch_preloads_blocks() {
        let dir = ScratchDir::new("db-warm").unwrap();
        let mut db = open_small(dir.path());
        for i in 0..500u32 {
            db.put(format!("key-{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        db.flush().unwrap();
        let ring = Arc::new(flowkv_common::ioring::IoRing::new(StdVfs::shared(), 2));
        db.set_ring(Arc::clone(&ring), 0);

        let before = db.metrics().snapshot().bytes_read;
        db.warm_batch(&[b"key-00123".to_vec()]).unwrap();
        ring.wait_idle();
        db.drain_warm().unwrap();
        let warmed = db.metrics().snapshot().bytes_read;
        assert!(warmed > before, "warm read charged no bytes");

        // The foreground read is served entirely from the warmed cache.
        assert_eq!(
            db.get(b"key-00123").unwrap(),
            Resolved::Value(123u32.to_le_bytes().to_vec())
        );
        assert_eq!(db.metrics().snapshot().bytes_read, warmed);
    }

    #[test]
    fn warm_batch_skips_filtered_keys() {
        let dir = ScratchDir::new("db-warm-skip").unwrap();
        let mut db = open_small(dir.path());
        db.put(b"present", b"v").unwrap();
        db.flush().unwrap();
        let ring = Arc::new(flowkv_common::ioring::IoRing::new(StdVfs::shared(), 1));
        db.set_ring(Arc::clone(&ring), 0);

        // A key the bloom filter rejects schedules nothing.
        db.warm_batch(&[b"zz-absent".to_vec()]).unwrap();
        assert_eq!(ring.pending(), 0);

        // A second warm of the same block is suppressed while the first
        // is outstanding (or already resident once installed).
        db.warm_batch(&[b"present".to_vec()]).unwrap();
        ring.wait_idle();
        db.drain_warm().unwrap();
        let bytes = db.metrics().snapshot().bytes_read;
        db.warm_batch(&[b"present".to_vec()]).unwrap();
        ring.wait_idle();
        db.drain_warm().unwrap();
        assert_eq!(db.metrics().snapshot().bytes_read, bytes);
    }

    #[test]
    fn restore_discards_inflight_warms() {
        let dir = ScratchDir::new("db-warm-restore").unwrap();
        let ckpt = ScratchDir::new("db-warm-restore-dst").unwrap();
        let mut db = open_small(dir.path());
        db.put(b"a", b"1").unwrap();
        db.checkpoint(ckpt.path()).unwrap();
        for i in 0..200u32 {
            db.put(format!("k{i:04}").as_bytes(), &[7u8; 64]).unwrap();
        }
        db.flush().unwrap();
        let ring = Arc::new(flowkv_common::ioring::IoRing::new(StdVfs::shared(), 2));
        db.set_ring(Arc::clone(&ring), 0);
        db.warm_batch(&[b"k0100".to_vec()]).unwrap();
        db.restore(ckpt.path()).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Resolved::Value(b"1".to_vec()));
        assert_eq!(db.get(b"k0100").unwrap(), Resolved::Absent);
    }

    #[test]
    fn destroy_removes_files() {
        let dir = ScratchDir::new("db-destroy").unwrap();
        let mut db = open_small(dir.path());
        db.put(b"a", b"1").unwrap();
        db.flush().unwrap();
        db.destroy().unwrap();
        assert_eq!(db.get(b"a").unwrap(), Resolved::Absent);
        let entries: Vec<_> = std::fs::read_dir(dir.path()).unwrap().collect();
        assert!(entries.is_empty(), "files remain: {entries:?}");
    }
}
