//! Level metadata and the manifest file.
//!
//! A [`Version`] lists the table files of every level. Level 0 files may
//! overlap and are ordered newest-first; levels 1 and deeper hold files
//! with disjoint key ranges sorted by smallest key. The manifest persists
//! the current version atomically (write to a temporary file, fsync,
//! rename), so a crash leaves either the old or the new version.

use std::path::Path;
use std::sync::Arc;

use flowkv_common::codec::{crc32, put_len_prefixed, put_u64, put_varint_u64, Decoder};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::sstable::SstMeta;

/// Maximum number of levels, matching typical RocksDB configurations.
pub const MAX_LEVELS: usize = 7;

/// Name of the manifest file inside a database directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// The set of live table files, organized by level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Version {
    /// `levels[0]` is newest-first and may overlap; deeper levels are
    /// sorted by smallest key with disjoint ranges.
    pub levels: Vec<Vec<SstMeta>>,
    /// The next file number to allocate.
    pub next_file_no: u64,
}

impl Version {
    /// Creates an empty version with [`MAX_LEVELS`] levels.
    pub fn new() -> Self {
        Version {
            levels: vec![Vec::new(); MAX_LEVELS],
            next_file_no: 1,
        }
    }

    /// Total bytes of table files in `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|m| m.size).sum()
    }

    /// All file numbers across all levels.
    pub fn all_file_nos(&self) -> Vec<u64> {
        self.levels
            .iter()
            .flat_map(|l| l.iter().map(|m| m.file_no))
            .collect()
    }

    /// Total number of live table files.
    pub fn file_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Returns `true` when every level at `level` and deeper is empty.
    pub fn is_bottom(&self, level: usize) -> bool {
        self.levels[level + 1..].iter().all(|l| l.is_empty())
    }

    /// Files of `level` (1+) whose ranges intersect `[smallest, largest]`.
    pub fn overlapping_files(&self, level: usize, smallest: &[u8], largest: &[u8]) -> Vec<SstMeta> {
        self.levels[level]
            .iter()
            .filter(|m| m.smallest.as_slice() <= largest && smallest <= m.largest.as_slice())
            .cloned()
            .collect()
    }

    /// Inserts `meta` into sorted position within `level` (1+).
    pub fn insert_sorted(&mut self, level: usize, meta: SstMeta) {
        let pos = self.levels[level].partition_point(|m| m.smallest < meta.smallest);
        self.levels[level].insert(pos, meta);
    }

    /// Removes files with the given numbers from every level.
    pub fn remove_files(&mut self, file_nos: &[u64]) {
        for level in &mut self.levels {
            level.retain(|m| !file_nos.contains(&m.file_no));
        }
    }

    /// Serializes the version to bytes (with trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.next_file_no);
        put_varint_u64(&mut buf, self.levels.len() as u64);
        for level in &self.levels {
            put_varint_u64(&mut buf, level.len() as u64);
            for m in level {
                put_u64(&mut buf, m.file_no);
                put_u64(&mut buf, m.size);
                put_len_prefixed(&mut buf, &m.smallest);
                put_len_prefixed(&mut buf, &m.largest);
                put_u64(&mut buf, m.entries);
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses a version from the bytes written by [`Version::encode`].
    pub fn decode(data: &[u8], path: &Path) -> Result<Self> {
        if data.len() < 4 {
            return Err(StoreError::corruption(path, 0, "manifest too short"));
        }
        let (payload, crc_bytes) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("fixed"));
        if crc32(payload) != stored {
            return Err(StoreError::corruption(path, 0, "manifest checksum"));
        }
        let mut dec = Decoder::new(payload);
        let next_file_no = dec.get_u64()?;
        let n_levels = dec.get_varint_u64()? as usize;
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n_files = dec.get_varint_u64()? as usize;
            let mut files = Vec::with_capacity(n_files);
            for _ in 0..n_files {
                let file_no = dec.get_u64()?;
                let size = dec.get_u64()?;
                let smallest = dec.get_len_prefixed()?.to_vec();
                let largest = dec.get_len_prefixed()?.to_vec();
                let entries = dec.get_u64()?;
                files.push(SstMeta {
                    file_no,
                    size,
                    smallest,
                    largest,
                    entries,
                });
            }
            levels.push(files);
        }
        Ok(Version {
            levels,
            next_file_no,
        })
    }

    /// Atomically persists the version as `dir/MANIFEST`.
    pub fn save(&self, dir: &Path) -> Result<()> {
        self.save_in(&StdVfs::shared(), dir)
    }

    /// Atomically persists the version as `dir/MANIFEST` through `vfs`.
    pub fn save_in(&self, vfs: &Arc<dyn Vfs>, dir: &Path) -> Result<()> {
        let tmp = dir.join("MANIFEST.tmp");
        let target = dir.join(MANIFEST_NAME);
        vfs.write(&tmp, &self.encode())
            .map_err(|e| StoreError::io_at("manifest write", &tmp, e))?;
        vfs.rename(&tmp, &target)
            .map_err(|e| StoreError::io_at("manifest rename", &target, e))?;
        Ok(())
    }

    /// Loads `dir/MANIFEST`, or returns a fresh version if none exists.
    pub fn load(dir: &Path) -> Result<Self> {
        Self::load_in(&StdVfs::shared(), dir)
    }

    /// Loads `dir/MANIFEST` through `vfs`, or returns a fresh version if
    /// none exists.
    pub fn load_in(vfs: &Arc<dyn Vfs>, dir: &Path) -> Result<Self> {
        let path = dir.join(MANIFEST_NAME);
        match vfs.read(&path) {
            Ok(data) => Version::decode(&data, &path),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Version::new()),
            Err(e) => Err(StoreError::io_at("manifest read", &path, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn meta(no: u64, smallest: &str, largest: &str) -> SstMeta {
        SstMeta {
            file_no: no,
            size: 100,
            smallest: smallest.as_bytes().to_vec(),
            largest: largest.as_bytes().to_vec(),
            entries: 10,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut v = Version::new();
        v.next_file_no = 42;
        v.levels[0].push(meta(3, "a", "f"));
        v.levels[1].push(meta(1, "a", "c"));
        v.levels[1].push(meta(2, "d", "g"));
        let data = v.encode();
        let back = Version::decode(&data, Path::new("m")).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn save_and_load() {
        let dir = ScratchDir::new("version").unwrap();
        let mut v = Version::new();
        v.levels[0].push(meta(1, "k", "z"));
        v.save(dir.path()).unwrap();
        assert_eq!(Version::load(dir.path()).unwrap(), v);
    }

    #[test]
    fn load_missing_is_fresh() {
        let dir = ScratchDir::new("version-fresh").unwrap();
        let v = Version::load(dir.path()).unwrap();
        assert_eq!(v.file_count(), 0);
        assert_eq!(v.next_file_no, 1);
    }

    #[test]
    fn corrupt_manifest_detected() {
        let dir = ScratchDir::new("version-corrupt").unwrap();
        let v = Version::new();
        v.save(dir.path()).unwrap();
        let path = dir.path().join(MANIFEST_NAME);
        let mut data = std::fs::read(&path).unwrap();
        data[0] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        assert!(Version::load(dir.path()).unwrap_err().is_corruption());
    }

    #[test]
    fn overlap_and_sorted_insert() {
        let mut v = Version::new();
        v.insert_sorted(1, meta(2, "m", "p"));
        v.insert_sorted(1, meta(1, "a", "c"));
        v.insert_sorted(1, meta(3, "q", "z"));
        let nos: Vec<u64> = v.levels[1].iter().map(|m| m.file_no).collect();
        assert_eq!(nos, vec![1, 2, 3]);
        let overlap = v.overlapping_files(1, b"b", b"n");
        assert_eq!(overlap.len(), 2);
        assert_eq!(overlap[0].file_no, 1);
        assert_eq!(overlap[1].file_no, 2);
    }

    #[test]
    fn bottom_detection() {
        let mut v = Version::new();
        v.levels[1].push(meta(1, "a", "b"));
        assert!(v.is_bottom(1));
        assert!(!v.is_bottom(0));
        v.levels[3].push(meta(2, "a", "b"));
        assert!(!v.is_bottom(1));
        assert!(v.is_bottom(3));
    }

    #[test]
    fn remove_files_across_levels() {
        let mut v = Version::new();
        v.levels[0].push(meta(1, "a", "b"));
        v.levels[1].push(meta(2, "a", "b"));
        v.remove_files(&[1, 2]);
        assert_eq!(v.file_count(), 0);
    }
}
