//! A blocked-free, double-hashing Bloom filter for SSTables.
//!
//! RocksDB attaches a Bloom filter to every table file so point lookups
//! can skip files that cannot contain the key; we do the same. The filter
//! uses Kirsch–Mitzenmacher double hashing over the shared 64-bit key
//! hash, which is within a fraction of a percent of k independent hashes.

use flowkv_common::codec::{put_varint_u64, Decoder};
use flowkv_common::error::Result;
use flowkv_common::hash::hash64_seeded;

/// An immutable Bloom filter over a set of byte keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    num_bits: u64,
    k: u32,
}

impl BloomFilter {
    /// Builds a filter for `keys` at `bits_per_key` bits of budget each.
    ///
    /// `bits_per_key = 10` gives roughly a 1 % false-positive rate.
    pub fn build<'a>(keys: impl IntoIterator<Item = &'a [u8]>, bits_per_key: usize) -> Self {
        let keys: Vec<&[u8]> = keys.into_iter().collect();
        let num_bits = (keys.len() * bits_per_key).max(64) as u64;
        // The optimal number of probes is ln(2) * bits/key.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut bits = vec![0u8; num_bits.div_ceil(8) as usize];
        for key in keys {
            let (h1, h2) = Self::hash_pair(key);
            let mut h = h1;
            for _ in 0..k {
                let bit = h % num_bits;
                bits[(bit / 8) as usize] |= 1 << (bit % 8);
                h = h.wrapping_add(h2);
            }
        }
        BloomFilter { bits, num_bits, k }
    }

    /// Returns `false` only when `key` is definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash_pair(key);
        let mut h = h1;
        for _ in 0..self.k {
            let bit = h % self.num_bits;
            if self.bits[(bit / 8) as usize] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(h2);
        }
        true
    }

    /// Serialized size of the filter in bytes (approximate).
    pub fn byte_size(&self) -> usize {
        self.bits.len() + 16
    }

    /// Appends the binary encoding of the filter to `buf`.
    pub fn encode_to(&self, buf: &mut Vec<u8>) {
        put_varint_u64(buf, self.num_bits);
        put_varint_u64(buf, u64::from(self.k));
        buf.extend_from_slice(&self.bits);
    }

    /// Decodes a filter previously written by [`BloomFilter::encode_to`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self> {
        let num_bits = dec.get_varint_u64()?;
        let k = dec.get_varint_u64()? as u32;
        let n_bytes = num_bits.div_ceil(8) as usize;
        let bits = dec.take(n_bytes, "bloom bits")?.to_vec();
        Ok(BloomFilter { bits, num_bits, k })
    }

    fn hash_pair(key: &[u8]) -> (u64, u64) {
        let h1 = hash64_seeded(key, 0xb100);
        let h2 = hash64_seeded(key, 0xb200) | 1;
        (h1, h2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:06}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(5000);
        let filter = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        for k in &ks {
            assert!(filter.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let ks = keys(5000);
        let filter = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let mut fp = 0usize;
        let probes = 10_000;
        for i in 0..probes {
            let absent = format!("absent-{i:06}");
            if filter.may_contain(absent.as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn empty_filter_rejects() {
        let filter = BloomFilter::build(std::iter::empty(), 10);
        assert!(!filter.may_contain(b"anything"));
    }

    #[test]
    fn codec_roundtrip() {
        let ks = keys(100);
        let filter = BloomFilter::build(ks.iter().map(|k| k.as_slice()), 10);
        let mut buf = Vec::new();
        filter.encode_to(&mut buf);
        let mut dec = Decoder::new(&buf);
        let back = BloomFilter::decode_from(&mut dec).unwrap();
        assert_eq!(back, filter);
    }
}
