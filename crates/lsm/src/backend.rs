//! The window-state adapter over the LSM database.
//!
//! Flink's RocksDB state backend encodes `(namespace, key)` composites and
//! maps window operations onto plain KV calls; [`LsmBackend`] does the
//! same. The composite key is the window's order-preserving 16-byte
//! encoding followed by the user key, so all state of one window is a
//! contiguous key range:
//!
//! - `Append` → a merge operand (lazy merging, as RocksDB does),
//! - `Get`/`Put` of aggregates → point `get`/`put` plus a tombstone,
//! - `GetWindow` → a chunked prefix scan with per-key tombstones.
//!
//! None of the paper's semantic-aware optimizations exist here — that is
//! the point of the baseline.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use flowkv_common::backend::{
    AggregateKind, KeyFilter, OperatorContext, StateBackend, StateBackendFactory, StateEntry,
    WindowChunk,
};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::ioring::IoRing;
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::types::{Timestamp, WindowId};
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::db::{Db, DbConfig};
use crate::entry::Resolved;

/// Builds the composite key `window ‖ user-key`.
fn composite_key_into(out: &mut Vec<u8>, key: &[u8], window: WindowId) {
    out.clear();
    out.extend_from_slice(&window.to_ordered_bytes());
    out.extend_from_slice(key);
}

/// Smallest key with the window's prefix.
fn window_prefix(window: WindowId) -> Vec<u8> {
    window.to_ordered_bytes().to_vec()
}

/// Exclusive upper bound of the window's key range.
fn window_prefix_end(window: WindowId) -> Vec<u8> {
    let mut bound = window.to_ordered_bytes().to_vec();
    for i in (0..bound.len()).rev() {
        if bound[i] != 0xff {
            bound[i] += 1;
            bound.truncate(i + 1);
            return bound;
        }
    }
    // All bytes were 0xff: fall back to a bound past every 16-byte prefix.
    vec![0xff; 17]
}

/// Window-state backend over [`Db`].
pub struct LsmBackend {
    db: Db,
    chunk_entries: usize,
    /// Scan cursors of windows currently being drained by
    /// [`StateBackend::get_window_chunk`].
    window_cursors: HashMap<WindowId, Vec<u8>>,
    /// Reusable scratch for composite keys, so per-tuple operations
    /// allocate no `Vec<u8>` for the 16-byte-prefixed key.
    key_buf: Vec<u8>,
}

impl LsmBackend {
    /// Opens a backend over a database in `dir`.
    pub fn open(dir: &Path, cfg: DbConfig, chunk_entries: usize) -> Result<Self> {
        Self::open_with_vfs(dir, cfg, chunk_entries, StdVfs::shared())
    }

    /// Opens a backend whose file operations go through `vfs`.
    pub fn open_with_vfs(
        dir: &Path,
        cfg: DbConfig,
        chunk_entries: usize,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        Ok(LsmBackend {
            db: Db::open_with_vfs(dir, cfg, StoreMetrics::new_shared(), vfs)?,
            chunk_entries: chunk_entries.max(1),
            window_cursors: HashMap::new(),
            key_buf: Vec::new(),
        })
    }

    /// Attaches a background I/O ring for block warm-up, routing its
    /// jobs under `tag`.
    pub fn set_ring(&mut self, ring: Arc<IoRing>, tag: u64) {
        self.db.set_ring(ring, tag);
    }

    fn resolved_to_list(resolved: Resolved) -> Vec<Vec<u8>> {
        match resolved {
            Resolved::Absent => Vec::new(),
            Resolved::Value(v) => vec![v],
            Resolved::List(vs) => vs,
        }
    }
}

impl StateBackend for LsmBackend {
    fn append(&mut self, key: &[u8], window: WindowId, value: &[u8], _ts: Timestamp) -> Result<()> {
        let _t = self.db.metrics().timer(OpCategory::Write);
        composite_key_into(&mut self.key_buf, key, window);
        self.db.merge(&self.key_buf, value)
    }

    fn get_window_chunk(&mut self, window: WindowId) -> Result<Option<WindowChunk>> {
        let _t = self.db.metrics().timer(OpCategory::Read);
        let start = self
            .window_cursors
            .get(&window)
            .cloned()
            .unwrap_or_else(|| window_prefix(window));
        let end = window_prefix_end(window);
        let (items, next) = self.db.scan(&start, &end, self.chunk_entries)?;
        if items.is_empty() {
            self.window_cursors.remove(&window);
            return Ok(None);
        }
        let mut chunk: WindowChunk = Vec::with_capacity(items.len());
        for (composite, resolved) in items {
            // Fetch-and-remove: tombstone what we hand out.
            self.db.delete(&composite)?;
            let user_key = composite[16..].to_vec();
            chunk.push((user_key, Self::resolved_to_list(resolved)));
        }
        match next {
            Some(resume) => {
                self.window_cursors.insert(window, resume);
            }
            None => {
                self.window_cursors.remove(&window);
            }
        }
        Ok(Some(chunk))
    }

    fn take_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        let _t = self.db.metrics().timer(OpCategory::Read);
        composite_key_into(&mut self.key_buf, key, window);
        let resolved = self.db.get(&self.key_buf)?;
        if !matches!(resolved, Resolved::Absent) {
            self.db.delete(&self.key_buf)?;
        }
        Ok(Self::resolved_to_list(resolved))
    }

    fn peek_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        let _t = self.db.metrics().timer(OpCategory::Read);
        composite_key_into(&mut self.key_buf, key, window);
        let resolved = self.db.get(&self.key_buf)?;
        Ok(Self::resolved_to_list(resolved))
    }

    fn take_aggregate(&mut self, key: &[u8], window: WindowId) -> Result<Option<Vec<u8>>> {
        let _t = self.db.metrics().timer(OpCategory::Read);
        composite_key_into(&mut self.key_buf, key, window);
        match self.db.get(&self.key_buf)? {
            Resolved::Absent => Ok(None),
            Resolved::Value(v) => {
                self.db.delete(&self.key_buf)?;
                Ok(Some(v))
            }
            Resolved::List(_) => Err(StoreError::invalid_state(
                "aggregate key holds merge operands".to_string(),
            )),
        }
    }

    fn put_aggregate(&mut self, key: &[u8], window: WindowId, aggregate: &[u8]) -> Result<()> {
        let _t = self.db.metrics().timer(OpCategory::Write);
        composite_key_into(&mut self.key_buf, key, window);
        self.db.put(&self.key_buf, aggregate)
    }

    fn flush(&mut self) -> Result<()> {
        self.db.flush()
    }

    fn advance_prefetch(&mut self, _stream_time: Timestamp) -> Result<()> {
        // Nothing here anticipates by stream time; the warm-up hints in
        // `warm` carry the schedule. This boundary call only installs
        // whatever the ring finished since the last drain (and re-raises
        // background crash faults promptly).
        self.db.drain_warm()
    }

    fn wants_warm(&self) -> bool {
        self.db.has_ring()
    }

    fn warm(&mut self, pairs: &[(&[u8], WindowId)]) -> Result<()> {
        if pairs.is_empty() || !self.db.has_ring() {
            return Ok(());
        }
        let keys: Vec<Vec<u8>> = pairs
            .iter()
            .map(|(key, window)| {
                let mut composite = Vec::with_capacity(16 + key.len());
                composite.extend_from_slice(&window.to_ordered_bytes());
                composite.extend_from_slice(key);
                composite
            })
            .collect();
        self.db.warm_batch(&keys)
    }

    fn extract_range(
        &mut self,
        in_range: KeyFilter<'_>,
        _kind: AggregateKind,
    ) -> Result<Vec<StateEntry>> {
        // Full-range scan in resumable chunks; the upper bound is the
        // same sentinel `window_prefix_end` falls back to, which sorts
        // past every 16-byte window prefix.
        let mut entries = Vec::new();
        let mut start = Vec::new();
        let end = vec![0xff; 17];
        loop {
            let (items, next) = self.db.scan(&start, &end, self.chunk_entries)?;
            for (composite, resolved) in items {
                let window = WindowId::from_ordered_bytes(&composite[..16])?;
                let key = composite[16..].to_vec();
                if !in_range(&key) {
                    continue;
                }
                // `put` resolves to `Value` (an aggregate), `merge`
                // operands resolve to `List` (appended values) — the
                // same discrimination `take_aggregate` relies on.
                match resolved {
                    Resolved::Absent => {}
                    Resolved::Value(value) => {
                        entries.push(StateEntry::Aggregate { key, window, value })
                    }
                    Resolved::List(values) => entries.push(StateEntry::Values {
                        key,
                        window,
                        values,
                    }),
                }
            }
            match next {
                Some(resume) => start = resume,
                None => break,
            }
        }
        Ok(entries)
    }

    fn demoted_hint(&mut self, window: WindowId) -> Result<()> {
        // A demotion wave just tombstoned every row of `window`; run the
        // size-triggered compaction check now so the dead range is
        // reclaimed while the touched blocks are still cache-warm,
        // instead of waiting for the next write to trip it.
        self.window_cursors.remove(&window);
        self.db.maybe_compact()
    }

    fn metrics(&self) -> Arc<StoreMetrics> {
        self.db.metrics()
    }

    fn memory_bytes(&self) -> usize {
        self.db.memory_bytes()
    }

    fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        self.db.checkpoint(dir)
    }

    fn restore(&mut self, dir: &Path) -> Result<()> {
        self.window_cursors.clear();
        self.db.restore(dir)
    }

    fn close(&mut self) -> Result<()> {
        self.db.destroy()
    }
}

/// Factory producing [`LsmBackend`] instances for operator partitions.
pub struct LsmBackendFactory {
    cfg: DbConfig,
    chunk_entries: usize,
    vfs: Arc<dyn Vfs>,
}

impl LsmBackendFactory {
    /// Creates a factory with the given database configuration.
    pub fn new(cfg: DbConfig) -> Self {
        LsmBackendFactory {
            cfg,
            chunk_entries: 1024,
            vfs: StdVfs::shared(),
        }
    }

    /// Overrides the number of entries per window chunk.
    pub fn with_chunk_entries(mut self, n: usize) -> Self {
        self.chunk_entries = n.max(1);
        self
    }

    /// Routes every file operation of produced backends through `vfs`.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }
}

impl StateBackendFactory for LsmBackendFactory {
    fn create(&self, ctx: &OperatorContext) -> Result<Box<dyn StateBackend>> {
        let dir = ctx.partition_dir();
        self.vfs
            .create_dir_all(&dir)
            .map_err(|e| StoreError::io_at("backend dir", &dir, e))?;
        let mut backend = LsmBackend::open_with_vfs(
            &dir,
            self.cfg.clone(),
            self.chunk_entries,
            Arc::clone(&self.vfs),
        )?;
        if let Some(policy) = ctx.io.as_ref().filter(|p| p.threads > 0) {
            let ring = IoRing::with_telemetry(
                Arc::clone(&self.vfs),
                policy.threads,
                policy.shuffle_seed,
                ctx.telemetry.clone(),
            );
            backend.set_ring(Arc::new(ring), 0);
        }
        Ok(Box::new(backend))
    }

    fn name(&self) -> &'static str {
        "lsm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn backend(dir: &Path) -> LsmBackend {
        LsmBackend::open(dir, DbConfig::small_for_tests(), 8).unwrap()
    }

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    #[test]
    fn append_take_values_roundtrip() {
        let dir = ScratchDir::new("lsmb-append").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 100);
        b.append(b"k", win, b"v1", 5).unwrap();
        b.append(b"k", win, b"v2", 6).unwrap();
        assert_eq!(
            b.take_values(b"k", win).unwrap(),
            vec![b"v1".to_vec(), b"v2".to_vec()]
        );
        // Fetch-and-remove: second take is empty.
        assert!(b.take_values(b"k", win).unwrap().is_empty());
    }

    #[test]
    fn windows_do_not_interfere() {
        let dir = ScratchDir::new("lsmb-windows").unwrap();
        let mut b = backend(dir.path());
        b.append(b"k", w(0, 100), b"a", 1).unwrap();
        b.append(b"k", w(100, 200), b"b", 101).unwrap();
        assert_eq!(b.take_values(b"k", w(0, 100)).unwrap(), vec![b"a".to_vec()]);
        assert_eq!(
            b.take_values(b"k", w(100, 200)).unwrap(),
            vec![b"b".to_vec()]
        );
    }

    #[test]
    fn aggregate_roundtrip() {
        let dir = ScratchDir::new("lsmb-agg").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 100);
        assert_eq!(b.take_aggregate(b"k", win).unwrap(), None);
        b.put_aggregate(b"k", win, b"7").unwrap();
        assert_eq!(b.take_aggregate(b"k", win).unwrap(), Some(b"7".to_vec()));
        assert_eq!(b.take_aggregate(b"k", win).unwrap(), None);
    }

    #[test]
    fn window_chunks_drain_all_keys() {
        let dir = ScratchDir::new("lsmb-chunks").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 1000);
        let other = w(1000, 2000);
        for i in 0..30u32 {
            let key = format!("key-{i:03}");
            b.append(key.as_bytes(), win, b"v", i as i64).unwrap();
            b.append(key.as_bytes(), other, b"x", 1000 + i as i64)
                .unwrap();
        }
        let mut seen = Vec::new();
        while let Some(chunk) = b.get_window_chunk(win).unwrap() {
            assert!(chunk.len() <= 8, "chunk exceeds configured size");
            for (k, vs) in chunk {
                assert_eq!(vs, vec![b"v".to_vec()]);
                seen.push(k);
            }
        }
        assert_eq!(seen.len(), 30);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 30, "duplicate keys across chunks");
        // The other window is untouched.
        assert_eq!(
            b.take_values(b"key-000", other).unwrap(),
            vec![b"x".to_vec()]
        );
    }

    #[test]
    fn checkpoint_restore_preserves_state() {
        let dir = ScratchDir::new("lsmb-ckpt").unwrap();
        let ckpt = ScratchDir::new("lsmb-ckpt-dst").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 100);
        b.append(b"k", win, b"v", 1).unwrap();
        b.checkpoint(ckpt.path()).unwrap();
        b.append(b"k", win, b"lost", 2).unwrap();
        b.restore(ckpt.path()).unwrap();
        assert_eq!(b.take_values(b"k", win).unwrap(), vec![b"v".to_vec()]);
    }

    #[test]
    fn warm_hint_serves_take_from_cache() {
        let dir = ScratchDir::new("lsmb-warm").unwrap();
        let mut b = backend(dir.path());
        let win = w(0, 100);
        for i in 0..200u32 {
            b.put_aggregate(format!("key-{i:03}").as_bytes(), win, &[9u8; 64])
                .unwrap();
        }
        b.flush().unwrap();
        let ring = Arc::new(flowkv_common::ioring::IoRing::new(StdVfs::shared(), 2));
        b.set_ring(Arc::clone(&ring), 0);

        let before = b.metrics().snapshot().bytes_read;
        b.warm(&[(b"key-050", win), (b"key-150", win)]).unwrap();
        ring.wait_idle();
        b.advance_prefetch(0).unwrap();
        let warmed = b.metrics().snapshot().bytes_read;
        assert!(warmed > before, "warm hints scheduled no reads");

        assert_eq!(
            b.take_aggregate(b"key-050", win).unwrap(),
            Some(vec![9u8; 64])
        );
        // The lookup itself read nothing from disk.
        assert_eq!(b.metrics().snapshot().bytes_read, warmed);
    }

    #[test]
    fn factory_wires_ring_from_context() {
        let dir = ScratchDir::new("lsmb-factory-io").unwrap();
        let factory = LsmBackendFactory::new(DbConfig::small_for_tests());
        let ctx = OperatorContext {
            operator: "op".into(),
            partition: 0,
            semantics: flowkv_common::backend::OperatorSemantics::new(
                flowkv_common::backend::AggregateKind::Incremental,
                flowkv_common::backend::WindowKind::Fixed { size: 100 },
            ),
            data_dir: dir.path().to_path_buf(),
            telemetry: None,
            io: Some(flowkv_common::ioring::IoPolicy::with_threads(2)),
        };
        let mut b = factory.create(&ctx).unwrap();
        let win = w(0, 100);
        b.put_aggregate(b"k", win, b"7").unwrap();
        b.flush().unwrap();
        b.warm(&[(b"k", win)]).unwrap();
        b.advance_prefetch(0).unwrap();
        assert_eq!(b.take_aggregate(b"k", win).unwrap(), Some(b"7".to_vec()));
        b.close().unwrap();
    }

    #[test]
    fn factory_creates_partition_dirs() {
        let dir = ScratchDir::new("lsmb-factory").unwrap();
        let factory = LsmBackendFactory::new(DbConfig::small_for_tests());
        let ctx = OperatorContext {
            operator: "op".into(),
            partition: 0,
            semantics: flowkv_common::backend::OperatorSemantics::new(
                flowkv_common::backend::AggregateKind::FullList,
                flowkv_common::backend::WindowKind::Fixed { size: 100 },
            ),
            data_dir: dir.path().to_path_buf(),
            telemetry: None,
            io: None,
        };
        let mut b = factory.create(&ctx).unwrap();
        b.append(b"k", w(0, 100), b"v", 1).unwrap();
        assert_eq!(b.take_values(b"k", w(0, 100)).unwrap(), vec![b"v".to_vec()]);
        assert_eq!(factory.name(), "lsm");
    }
}
