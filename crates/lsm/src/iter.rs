//! The merging iterator combining entries across sources.
//!
//! Sources (memtable snapshots, SSTables) each yield unique keys in
//! ascending order. The merging iterator aligns them by key, folds the
//! entries newest-first with [`Entry::combine`], and emits one combined
//! entry per key — still unresolved, so compactions can write it back out
//! and reads can [`Entry::resolve`] it.

use flowkv_common::error::Result;

use crate::entry::Entry;
use crate::sstable::SstIter;

/// A stream of `(key, entry)` pairs with strictly ascending unique keys.
pub trait EntrySource {
    /// Returns the next pair, or `Ok(None)` at the end.
    fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Entry)>>;
}

/// Source over an owned, sorted vector (memtable snapshots, tests).
pub struct VecSource {
    iter: std::vec::IntoIter<(Vec<u8>, Entry)>,
}

impl VecSource {
    /// Wraps `pairs`, which must be sorted by strictly ascending key.
    pub fn new(pairs: Vec<(Vec<u8>, Entry)>) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        VecSource {
            iter: pairs.into_iter(),
        }
    }
}

impl EntrySource for VecSource {
    fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Entry)>> {
        Ok(self.iter.next())
    }
}

impl EntrySource for SstIter<'_> {
    fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Entry)>> {
        SstIter::next_entry(self)
    }
}

/// K-way merge over sources ordered newest-first.
///
/// `sources[0]` shadows `sources[1]`, which shadows `sources[2]`, and so
/// on — the caller passes the memtable first, then level-0 files in
/// recency order, then deeper levels.
pub struct MergingIter<'a> {
    sources: Vec<Box<dyn EntrySource + 'a>>,
    heads: Vec<Option<(Vec<u8>, Entry)>>,
}

impl<'a> MergingIter<'a> {
    /// Creates a merge over `sources`, newest first.
    pub fn new(sources: Vec<Box<dyn EntrySource + 'a>>) -> Result<Self> {
        let mut heads = Vec::with_capacity(sources.len());
        let mut sources = sources;
        for s in &mut sources {
            heads.push(s.next_entry()?);
        }
        Ok(MergingIter { sources, heads })
    }

    /// Returns the next `(key, combined-entry)` pair in key order.
    pub fn next_combined(&mut self) -> Result<Option<(Vec<u8>, Entry)>> {
        // Find the smallest key among the heads.
        let min_key: Option<Vec<u8>> = self.heads.iter().flatten().map(|(k, _)| k.clone()).min();
        let Some(key) = min_key else {
            return Ok(None);
        };
        // Fold matching heads newest-first and advance their sources.
        let mut acc: Option<Entry> = None;
        for i in 0..self.heads.len() {
            let matches = matches!(&self.heads[i], Some((k, _)) if *k == key);
            if !matches {
                continue;
            }
            let (_, entry) = self.heads[i].take().expect("checked above");
            acc = Some(match acc {
                None => entry,
                Some(newer) => {
                    if newer.is_terminal() {
                        newer
                    } else {
                        Entry::combine(newer, entry)
                    }
                }
            });
            self.heads[i] = self.sources[i].next_entry()?;
        }
        Ok(Some((key, acc.expect("at least one head matched"))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Resolved;

    fn b(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    fn src(pairs: Vec<(&str, Entry)>) -> Box<dyn EntrySource> {
        Box::new(VecSource::new(
            pairs.into_iter().map(|(k, e)| (b(k), e)).collect(),
        ))
    }

    #[test]
    fn merges_disjoint_sources_in_order() {
        let mut m = MergingIter::new(vec![
            src(vec![("a", Entry::Put(b("1"))), ("c", Entry::Put(b("3")))]),
            src(vec![("b", Entry::Put(b("2")))]),
        ])
        .unwrap();
        let keys: Vec<Vec<u8>> = std::iter::from_fn(|| m.next_combined().unwrap())
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![b("a"), b("b"), b("c")]);
    }

    #[test]
    fn newer_put_shadows_older() {
        let mut m = MergingIter::new(vec![
            src(vec![("k", Entry::Put(b("new")))]),
            src(vec![("k", Entry::Put(b("old")))]),
        ])
        .unwrap();
        let (_, e) = m.next_combined().unwrap().unwrap();
        assert_eq!(e, Entry::Put(b("new")));
        assert!(m.next_combined().unwrap().is_none());
    }

    #[test]
    fn merge_operands_fold_across_sources() {
        let mut m = MergingIter::new(vec![
            src(vec![("k", Entry::Merge(vec![b("c")]))]),
            src(vec![("k", Entry::Merge(vec![b("b")]))]),
            src(vec![("k", Entry::Merge(vec![b("a")]))]),
        ])
        .unwrap();
        let (_, e) = m.next_combined().unwrap().unwrap();
        assert_eq!(e.resolve(), Resolved::List(vec![b("a"), b("b"), b("c")]));
    }

    #[test]
    fn tombstone_blocks_older_merges() {
        let mut m = MergingIter::new(vec![
            src(vec![("k", Entry::Merge(vec![b("new")]))]),
            src(vec![("k", Entry::Delete)]),
            src(vec![("k", Entry::Merge(vec![b("ancient")]))]),
        ])
        .unwrap();
        let (_, e) = m.next_combined().unwrap().unwrap();
        assert_eq!(e.resolve(), Resolved::List(vec![b("new")]));
    }

    #[test]
    fn empty_merge() {
        let mut m = MergingIter::new(vec![src(vec![]), src(vec![])]).unwrap();
        assert!(m.next_combined().unwrap().is_none());
    }
}
