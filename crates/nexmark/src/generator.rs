//! The NEXMark event generator.
//!
//! Follows the Beam generator's structure (paper §6, "Input dataset"):
//! deterministic given a seed, with each block of 50 events containing
//! 1 person, 3 auctions, and 46 bids (2 % / 6 % / 92 %). Event time
//! advances at a configurable rate, so a fixed `events_per_second`
//! directly controls how many tuples each window contains.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flowkv_common::types::{Timestamp, Tuple};

use crate::model::{Auction, Bid, Event, Person};

/// Events per 50-event block, following the Beam NEXMark generator.
const PERSONS_PER_BLOCK: u64 = 1;
const AUCTIONS_PER_BLOCK: u64 = 3;
const BLOCK: u64 = 50;

const US_STATES: [&str; 8] = ["AZ", "CA", "ID", "KY", "MO", "NY", "OR", "WA"];
const CHANNELS: [&str; 4] = [
    "flink-mobile",
    "aol-mail",
    "baidu-search",
    "apps-like-Gmail",
];
const FIRST_NAMES: [&str; 8] = [
    "Peter", "Paul", "Luke", "John", "Saul", "Vicky", "Kate", "Julie",
];
const LAST_NAMES: [&str; 8] = [
    "Shultz", "Abrams", "Spencer", "White", "Bartels", "Walton", "Smith", "Jones",
];

/// Configuration of one generated stream.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Total number of events to produce.
    pub num_events: u64,
    /// Seed for deterministic generation.
    pub seed: u64,
    /// Timestamp of the first event.
    pub first_ts: Timestamp,
    /// Event-time rate: events per second of stream time.
    pub events_per_second: u64,
    /// Number of distinct people actively bidding.
    pub active_people: u64,
    /// Number of distinct auctions receiving bids.
    pub active_auctions: u64,
    /// Fraction of bids routed to a small hot set (NEXMark skew).
    pub hot_ratio: f64,
    /// Maximum backward timestamp jitter in milliseconds: each event's
    /// timestamp is shifted back by a uniform amount in `[0, this]`,
    /// producing the bounded out-of-orderness real sources exhibit.
    pub out_of_order_ms: i64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_events: 100_000,
            seed: 42,
            first_ts: 0,
            events_per_second: 10_000,
            active_people: 1_000,
            active_auctions: 1_000,
            hot_ratio: 0.1,
            out_of_order_ms: 0,
        }
    }
}

impl GeneratorConfig {
    /// Event timestamp of the `i`-th event.
    pub fn timestamp_of(&self, i: u64) -> Timestamp {
        self.first_ts + (i * 1_000 / self.events_per_second.max(1)) as i64
    }

    /// Total event-time span of the stream in milliseconds.
    pub fn stream_span_ms(&self) -> i64 {
        self.timestamp_of(self.num_events.saturating_sub(1)) - self.first_ts
    }
}

/// Deterministic NEXMark event stream.
pub struct EventGenerator {
    cfg: GeneratorConfig,
    rng: StdRng,
    next: u64,
    next_person_id: u64,
    next_auction_id: u64,
}

impl EventGenerator {
    /// Creates a generator for `cfg`.
    pub fn new(cfg: GeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        EventGenerator {
            cfg,
            rng,
            next: 0,
            next_person_id: 0,
            next_auction_id: 0,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Converts the event stream into engine tuples: the key is the event
    /// sequence number (queries re-key in their first stage) and the
    /// value is the serialized event.
    pub fn tuples(self) -> impl Iterator<Item = Tuple> {
        self.tuples_with_telemetry(None)
    }

    /// Like [`tuples`](Self::tuples), additionally publishing generator
    /// telemetry when a handle is given: per-type event counters
    /// (`nexmark_events_total{type=person|auction|bid}`) and the latest
    /// generated event time (`nexmark_event_time_ms`), which together
    /// with the executor's `operator_watermark` gauges make end-to-end
    /// ingest lag observable. `None` costs nothing per event.
    pub fn tuples_with_telemetry(
        self,
        telemetry: Option<std::sync::Arc<flowkv_common::telemetry::Telemetry>>,
    ) -> impl Iterator<Item = Tuple> {
        let probe = telemetry.map(|t| {
            let registry = t.registry();
            (
                registry.counter("nexmark_events_total{type=person}"),
                registry.counter("nexmark_events_total{type=auction}"),
                registry.counter("nexmark_events_total{type=bid}"),
                registry.gauge("nexmark_event_time_ms"),
            )
        });
        let mut seq: u64 = 0;
        self.map(move |event| {
            let ts = event.timestamp();
            if let Some((people, auctions, bids, event_time)) = &probe {
                match &event {
                    Event::Person(_) => people.inc(),
                    Event::Auction(_) => auctions.inc(),
                    Event::Bid(_) => bids.inc(),
                }
                event_time.set(ts);
            }
            let t = Tuple::new(seq.to_le_bytes().to_vec(), event.encode(), ts);
            seq += 1;
            t
        })
    }

    fn person_id_for_bid(&mut self) -> u64 {
        let people = self.cfg.active_people.max(1);
        if self.rng.gen_bool(self.cfg.hot_ratio.clamp(0.0, 1.0)) {
            // The hot set is the most recent ~2 % of people.
            let hot = (people / 50).max(1);
            self.rng.gen_range(0..hot)
        } else {
            self.rng.gen_range(0..people)
        }
    }

    fn auction_id_for_bid(&mut self) -> u64 {
        let auctions = self.cfg.active_auctions.max(1);
        if self.rng.gen_bool(self.cfg.hot_ratio.clamp(0.0, 1.0)) {
            let hot = (auctions / 50).max(1);
            self.rng.gen_range(0..hot)
        } else {
            self.rng.gen_range(0..auctions)
        }
    }
}

impl Iterator for EventGenerator {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        if self.next >= self.cfg.num_events {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let mut ts = self.cfg.timestamp_of(i);
        if self.cfg.out_of_order_ms > 0 {
            ts -= self.rng.gen_range(0..=self.cfg.out_of_order_ms);
            ts = ts.max(self.cfg.first_ts);
        }
        let slot = i % BLOCK;
        Some(if slot < PERSONS_PER_BLOCK {
            let id = self.next_person_id;
            self.next_person_id += 1;
            Event::Person(Person {
                id,
                name: format!(
                    "{} {}",
                    FIRST_NAMES[self.rng.gen_range(0..FIRST_NAMES.len())],
                    LAST_NAMES[self.rng.gen_range(0..LAST_NAMES.len())]
                ),
                state: US_STATES[self.rng.gen_range(0..US_STATES.len())].to_string(),
                date_time: ts,
            })
        } else if slot < PERSONS_PER_BLOCK + AUCTIONS_PER_BLOCK {
            let id = self.next_auction_id;
            self.next_auction_id += 1;
            // Most sellers are recent people, as in the Beam generator.
            let seller = if self.next_person_id > 0 {
                let window = self.next_person_id.min(100);
                self.next_person_id - 1 - self.rng.gen_range(0..window)
            } else {
                0
            };
            Event::Auction(Auction {
                id,
                seller,
                category: self.rng.gen_range(0..10),
                initial_bid: self.rng.gen_range(100..10_000),
                date_time: ts,
                expires: ts + self.rng.gen_range(10_000..100_000),
            })
        } else {
            Event::Bid(Bid {
                auction: self.auction_id_for_bid(),
                bidder: self.person_id_for_bid(),
                price: self.rng.gen_range(100..1_000_000),
                channel: CHANNELS[self.rng.gen_range(0..CHANNELS.len())].to_string(),
                date_time: ts,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: u64) -> Vec<Event> {
        EventGenerator::new(GeneratorConfig {
            num_events: n,
            ..GeneratorConfig::default()
        })
        .collect()
    }

    #[test]
    fn proportions_match_nexmark() {
        let events = gen(5_000);
        let persons = events
            .iter()
            .filter(|e| matches!(e, Event::Person(_)))
            .count();
        let auctions = events
            .iter()
            .filter(|e| matches!(e, Event::Auction(_)))
            .count();
        let bids = events.iter().filter(|e| matches!(e, Event::Bid(_))).count();
        assert_eq!(persons, 100); // 2 %
        assert_eq!(auctions, 300); // 6 %
        assert_eq!(bids, 4_600); // 92 %
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gen(1_000);
        let b = gen(1_000);
        assert_eq!(a, b);
        let c: Vec<Event> = EventGenerator::new(GeneratorConfig {
            num_events: 1_000,
            seed: 7,
            ..GeneratorConfig::default()
        })
        .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_are_monotone_and_rate_controlled() {
        let cfg = GeneratorConfig {
            num_events: 10_000,
            events_per_second: 1_000,
            ..GeneratorConfig::default()
        };
        let span = cfg.stream_span_ms();
        // 10k events at 1k events/sec of stream time = ~10 s.
        assert_eq!(span, 9_999);
        let events: Vec<Event> = EventGenerator::new(cfg).collect();
        for pair in events.windows(2) {
            assert!(pair[0].timestamp() <= pair[1].timestamp());
        }
    }

    #[test]
    fn out_of_order_jitter_is_bounded() {
        let cfg = GeneratorConfig {
            num_events: 5_000,
            events_per_second: 1_000,
            out_of_order_ms: 50,
            ..GeneratorConfig::default()
        };
        let reference = GeneratorConfig {
            out_of_order_ms: 0,
            ..cfg.clone()
        };
        let jittered: Vec<Event> = EventGenerator::new(cfg.clone()).collect();
        let mut disordered = 0;
        for (i, e) in jittered.iter().enumerate() {
            let ideal = reference.timestamp_of(i as u64);
            assert!(e.timestamp() <= ideal);
            assert!(e.timestamp() >= ideal - 50);
            if i > 0 && e.timestamp() < jittered[i - 1].timestamp() {
                disordered += 1;
            }
        }
        assert!(disordered > 0, "jitter produced no out-of-order pairs");
    }

    #[test]
    fn bid_ids_respect_active_ranges() {
        let cfg = GeneratorConfig {
            num_events: 5_000,
            active_people: 10,
            active_auctions: 20,
            ..GeneratorConfig::default()
        };
        for event in EventGenerator::new(cfg) {
            if let Event::Bid(b) = event {
                assert!(b.bidder < 10);
                assert!(b.auction < 20);
            }
        }
    }

    #[test]
    fn tuples_carry_serialized_events() {
        let cfg = GeneratorConfig {
            num_events: 100,
            ..GeneratorConfig::default()
        };
        let tuples: Vec<Tuple> = EventGenerator::new(cfg).tuples().collect();
        assert_eq!(tuples.len(), 100);
        for t in &tuples {
            let event = Event::decode(&t.value).unwrap();
            assert_eq!(event.timestamp(), t.timestamp);
        }
        // Keys are distinct sequence numbers (spreads source routing).
        let mut keys: Vec<&Vec<u8>> = tuples.iter().map(|t| &t.key).collect();
        keys.dedup();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn average_bid_size_is_compact() {
        let events = gen(1_000);
        let bid_sizes: Vec<usize> = events
            .iter()
            .filter(|e| matches!(e, Event::Bid(_)))
            .map(|e| e.encode().len())
            .collect();
        let avg = bid_sizes.iter().sum::<usize>() as f64 / bid_sizes.len() as f64;
        assert!(avg > 10.0 && avg < 84.0, "avg bid size {avg}");
    }
}
