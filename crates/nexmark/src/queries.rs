//! The eight NEXMark queries of the FlowKV evaluation (paper §6).
//!
//! Every query is a [`Job`]: a first stateless stage decodes events,
//! filters, and re-keys; window stages do the stateful work. Two-input
//! shapes (Q8's windowed join) merge both entity kinds into one keyed
//! stream with tagged values, which is how the engine expresses joins.

use std::sync::Arc;

use flowkv_common::types::Tuple;
use flowkv_spe::functions::{CountAggregate, FnProcess, MaxAggregate, MedianProcess};
use flowkv_spe::job::{AggregateSpec, Job, JobBuilder};
use flowkv_spe::window::WindowAssigner;

use crate::model::Event;

/// Value tags for Q8's merged person/auction stream.
const TAG_PERSON: u8 = 0;
const TAG_AUCTION: u8 = 1;

/// Window parameters of one query instantiation.
#[derive(Clone, Copy, Debug)]
pub struct QueryParams {
    /// Fixed/sliding window length in event-time milliseconds.
    pub window_ms: i64,
    /// Sliding interval; the paper uses half the window size (§6.1).
    pub slide_ms: i64,
    /// Session gap for the session-window queries.
    pub session_gap_ms: i64,
    /// Degree of parallelism.
    pub parallelism: usize,
}

impl QueryParams {
    /// Paper-style parameters: slide is half the window, and the session
    /// gap scales with the window so session state grows with it.
    pub fn new(window_ms: i64) -> Self {
        QueryParams {
            window_ms,
            slide_ms: (window_ms / 2).max(1),
            session_gap_ms: (window_ms / 10).max(1),
            parallelism: 2,
        }
    }

    /// Overrides the parallelism.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Overrides the session gap.
    pub fn with_session_gap(mut self, gap_ms: i64) -> Self {
        self.session_gap_ms = gap_ms.max(1);
        self
    }
}

/// The eight evaluated queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Most-bids auction over consecutive sliding windows (RMW + RMW).
    Q5,
    /// Q5 without incremental aggregation in the second window
    /// (RMW + AAR).
    Q5Append,
    /// Highest bid per bidder over fixed windows (AAR).
    Q7,
    /// Q7 over session windows (AUR).
    Q7Session,
    /// New users who open an auction: windowed join (AAR).
    Q8,
    /// Bids per user over session windows (RMW).
    Q11,
    /// Median bid per user over session windows (AUR).
    Q11Median,
    /// Bids per user over a global window (RMW).
    Q12,
}

impl QueryId {
    /// Every evaluated query, in the paper's order.
    pub fn all() -> [QueryId; 8] {
        [
            QueryId::Q5,
            QueryId::Q5Append,
            QueryId::Q7,
            QueryId::Q7Session,
            QueryId::Q8,
            QueryId::Q11,
            QueryId::Q11Median,
            QueryId::Q12,
        ]
    }

    /// The paper's name for the query.
    pub fn name(&self) -> &'static str {
        match self {
            QueryId::Q5 => "Q5",
            QueryId::Q5Append => "Q5-Append",
            QueryId::Q7 => "Q7",
            QueryId::Q7Session => "Q7-Session",
            QueryId::Q8 => "Q8",
            QueryId::Q11 => "Q11",
            QueryId::Q11Median => "Q11-Median",
            QueryId::Q12 => "Q12",
        }
    }

    /// The dominant state-access pattern (paper Table in §6).
    pub fn pattern(&self) -> &'static str {
        match self {
            QueryId::Q5 => "RMW+RMW",
            QueryId::Q5Append => "RMW+AAR",
            QueryId::Q7 => "AAR",
            QueryId::Q7Session => "AUR",
            QueryId::Q8 => "AAR",
            QueryId::Q11 => "RMW",
            QueryId::Q11Median => "AUR",
            QueryId::Q12 => "RMW",
        }
    }

    /// Builds the query's dataflow job.
    pub fn build(&self, params: QueryParams) -> Job {
        match self {
            QueryId::Q5 => q5(params, true),
            QueryId::Q5Append => q5(params, false),
            QueryId::Q7 => q7_like(
                params,
                "q7",
                WindowAssigner::Fixed {
                    size: params.window_ms,
                },
            ),
            QueryId::Q7Session => q7_like(
                params,
                "q7-session",
                WindowAssigner::Session {
                    gap: params.session_gap_ms,
                },
            ),
            QueryId::Q8 => q8(params),
            QueryId::Q11 => q11(params),
            QueryId::Q11Median => q11_median(params),
            QueryId::Q12 => q12(params),
        }
    }
}

/// Stage 1 of the bid queries: decode, keep bids, key by bidder, value =
/// little-endian price.
fn bids_by_bidder(t: &Tuple, out: &mut Vec<Tuple>) {
    if let Ok(Some(bid)) = Event::decode_bid(&t.value) {
        out.push(Tuple::new(
            bid.bidder.to_le_bytes().to_vec(),
            bid.price.to_le_bytes().to_vec(),
            t.timestamp,
        ));
    }
}

/// Stage 1 of Q5: decode, keep bids, key by auction, value = 1.
fn bids_by_auction(t: &Tuple, out: &mut Vec<Tuple>) {
    if let Ok(Some(bid)) = Event::decode_bid(&t.value) {
        out.push(Tuple::new(
            bid.auction.to_le_bytes().to_vec(),
            1u64.to_le_bytes().to_vec(),
            t.timestamp,
        ));
    }
}

/// Q5 / Q5-Append: count bids per auction over sliding windows, then
/// find the auction count maximum over consecutive sliding windows.
fn q5(params: QueryParams, incremental_second: bool) -> Job {
    let sliding = WindowAssigner::Sliding {
        size: params.window_ms,
        slide: params.slide_ms,
    };
    let second = if incremental_second {
        AggregateSpec::Incremental(Arc::new(MaxAggregate))
    } else {
        // The derived Q5-Append keeps the full count list and maximizes
        // at trigger time, forcing the append pattern (paper §6).
        AggregateSpec::FullList(Arc::new(FnProcess::new(|_k, _w, values| {
            let max = values
                .iter()
                .map(|v| flowkv_spe::functions::decode_u64(v))
                .max()
                .unwrap_or(0);
            vec![max.to_le_bytes().to_vec()]
        })))
    };
    let name = if incremental_second {
        "q5"
    } else {
        "q5-append"
    };
    JobBuilder::new(name)
        .parallelism(params.parallelism)
        .stateless("bids-by-auction", bids_by_auction)
        .window(
            "count-bids",
            sliding.clone(),
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        )
        .stateless("counts-to-hot-key", |t, out| {
            // The second window maximizes across all auctions, so counts
            // collapse onto one key.
            out.push(Tuple::new(b"all".to_vec(), t.value.clone(), t.timestamp));
        })
        .window("max-bids", sliding, second)
        .build()
}

/// Q7 / Q7-Session: highest bid per bidder, kept as a full list (the
/// paper's side-input formulation enforces the append pattern).
fn q7_like(params: QueryParams, name: &str, assigner: WindowAssigner) -> Job {
    JobBuilder::new(name)
        .parallelism(params.parallelism)
        .stateless("bids-by-bidder", bids_by_bidder)
        .window(
            "highest-bid",
            assigner,
            AggregateSpec::FullList(Arc::new(FnProcess::new(|_k, _w, values| {
                let max = values
                    .iter()
                    .map(|v| flowkv_spe::functions::decode_u64(v))
                    .max()
                    .unwrap_or(0);
                vec![max.to_le_bytes().to_vec()]
            }))),
        )
        .build()
}

/// Q8: persons joined with their auctions inside fixed windows.
fn q8(params: QueryParams) -> Job {
    JobBuilder::new("q8")
        .parallelism(params.parallelism)
        .stateless("tag-persons-and-auctions", |t, out| {
            match Event::decode(&t.value) {
                Ok(Event::Person(p)) => {
                    out.push(Tuple::new(
                        p.id.to_le_bytes().to_vec(),
                        vec![TAG_PERSON],
                        t.timestamp,
                    ));
                }
                Ok(Event::Auction(a)) => {
                    let mut value = vec![TAG_AUCTION];
                    value.extend_from_slice(&a.id.to_le_bytes());
                    out.push(Tuple::new(
                        a.seller.to_le_bytes().to_vec(),
                        value,
                        t.timestamp,
                    ));
                }
                _ => {}
            }
        })
        .window(
            "join-new-sellers",
            WindowAssigner::Fixed {
                size: params.window_ms,
            },
            AggregateSpec::FullList(Arc::new(FnProcess::new(|key, _w, values| {
                // Emit the person id once if the window holds both the
                // registration and at least one auction.
                let has_person = values.iter().any(|v| v.first() == Some(&TAG_PERSON));
                let auctions = values
                    .iter()
                    .filter(|v| v.first() == Some(&TAG_AUCTION))
                    .count();
                if has_person && auctions > 0 {
                    vec![key.to_vec()]
                } else {
                    Vec::new()
                }
            }))),
        )
        .build()
}

/// Q11: bids per user over session windows (RMW).
fn q11(params: QueryParams) -> Job {
    JobBuilder::new("q11")
        .parallelism(params.parallelism)
        .stateless("bids-by-bidder", bids_by_bidder)
        .window(
            "count-per-session",
            WindowAssigner::Session {
                gap: params.session_gap_ms,
            },
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        )
        .build()
}

/// Q11-Median: median bid price per user over session windows (AUR).
fn q11_median(params: QueryParams) -> Job {
    JobBuilder::new("q11-median")
        .parallelism(params.parallelism)
        .stateless("bids-by-bidder", bids_by_bidder)
        .window(
            "median-per-session",
            WindowAssigner::Session {
                gap: params.session_gap_ms,
            },
            AggregateSpec::FullList(Arc::new(MedianProcess)),
        )
        .build()
}

/// Q12: bids per user over a global window (RMW).
fn q12(params: QueryParams) -> Job {
    JobBuilder::new("q12")
        .parallelism(params.parallelism)
        .stateless("bids-by-bidder", bids_by_bidder)
        .window(
            "count-global",
            WindowAssigner::Global,
            AggregateSpec::Incremental(Arc::new(CountAggregate)),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::backend::{AggregateKind, WindowKind};
    use flowkv_spe::job::Stage;

    fn window_semantics(job: &Job) -> Vec<(AggregateKind, WindowKind)> {
        job.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Window(spec) => {
                    let sem = spec.semantics();
                    Some((sem.aggregate, sem.window))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn all_eight_queries_build() {
        let params = QueryParams::new(1_000);
        for q in QueryId::all() {
            let job = q.build(params);
            assert!(job.window_stage_count() >= 1, "{}", q.name());
        }
    }

    #[test]
    fn patterns_match_paper_table() {
        let params = QueryParams::new(1_000);
        // Q7: one full-list window over fixed windows → AAR.
        let sem = window_semantics(&QueryId::Q7.build(params));
        assert_eq!(
            sem,
            vec![(AggregateKind::FullList, WindowKind::Fixed { size: 1_000 })]
        );
        // Q7-Session: AUR.
        let sem = window_semantics(&QueryId::Q7Session.build(params));
        assert_eq!(
            sem,
            vec![(AggregateKind::FullList, WindowKind::Session { gap: 100 })]
        );
        // Q11: RMW over sessions.
        let sem = window_semantics(&QueryId::Q11.build(params));
        assert_eq!(
            sem,
            vec![(AggregateKind::Incremental, WindowKind::Session { gap: 100 })]
        );
        // Q12: RMW over the global window.
        let sem = window_semantics(&QueryId::Q12.build(params));
        assert_eq!(sem, vec![(AggregateKind::Incremental, WindowKind::Global)]);
        // Q5: two incremental sliding windows.
        let sem = window_semantics(&QueryId::Q5.build(params));
        assert_eq!(sem.len(), 2);
        assert!(sem.iter().all(|(a, w)| *a == AggregateKind::Incremental
            && *w
                == WindowKind::Sliding {
                    size: 1_000,
                    slide: 500
                }));
        // Q5-Append: second window is full-list.
        let sem = window_semantics(&QueryId::Q5Append.build(params));
        assert_eq!(sem[1].0, AggregateKind::FullList);
    }

    #[test]
    fn names_and_patterns_are_stable() {
        let names: Vec<&str> = QueryId::all().iter().map(|q| q.name()).collect();
        assert_eq!(
            names,
            vec![
                "Q5",
                "Q5-Append",
                "Q7",
                "Q7-Session",
                "Q8",
                "Q11",
                "Q11-Median",
                "Q12"
            ]
        );
        assert_eq!(QueryId::Q11Median.pattern(), "AUR");
        assert_eq!(QueryId::Q8.pattern(), "AAR");
    }

    #[test]
    fn params_derive_slide_and_gap() {
        let p = QueryParams::new(2_000);
        assert_eq!(p.slide_ms, 1_000);
        assert_eq!(p.session_gap_ms, 200);
        assert_eq!(p.with_parallelism(8).parallelism, 8);
        assert_eq!(p.with_session_gap(5).session_gap_ms, 5);
    }
}
