//! The NEXMark benchmark: data model, generator, and the eight queries
//! of the FlowKV evaluation (paper §6, "Workload").
//!
//! NEXMark emulates an online auction: a stream of person, auction, and
//! bid events in a 2 % / 6 % / 92 % mix. The FlowKV paper evaluates
//! eight original and derived queries chosen to exercise all three state
//! access patterns:
//!
//! | query | pattern(s) | description |
//! |---|---|---|
//! | Q5 | RMW + RMW | most-bids auction over consecutive sliding windows |
//! | Q5-Append | RMW + AAR | same, without incremental aggregation |
//! | Q7 | AAR | highest bid per bidder, fixed windows (side input style) |
//! | Q7-Session | AUR | Q7 with session windows |
//! | Q8 | AAR | new users who auction, windowed join |
//! | Q11 | RMW | bids per user, session windows |
//! | Q11-Median | AUR | median bid per user, session windows |
//! | Q12 | RMW | bids per user, global window |

pub mod generator;
pub mod model;
pub mod queries;

pub use generator::{EventGenerator, GeneratorConfig};
pub use model::{Auction, Bid, Event, Person};
pub use queries::{QueryId, QueryParams};
