//! The NEXMark data model: persons, auctions, and bids.
//!
//! Events are serialized with the workspace codec into compact binary
//! records, matching the paper's byte-serialized tuples (≈16 B persons
//! and auctions, ≈84 B bids once bid extras are included).

use flowkv_common::codec::{put_len_prefixed, put_varint_i64, put_varint_u64, Decoder};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::types::Timestamp;

/// A registered user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Person {
    /// Unique person id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Two-letter state code.
    pub state: String,
    /// Event time the person registered.
    pub date_time: Timestamp,
}

/// An item put up for auction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Auction {
    /// Unique auction id.
    pub id: u64,
    /// The selling person's id.
    pub seller: u64,
    /// Item category.
    pub category: u32,
    /// Opening price in cents.
    pub initial_bid: u64,
    /// Event time the auction opened.
    pub date_time: Timestamp,
    /// Event time the auction closes.
    pub expires: Timestamp,
}

/// A bid on an auction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bid {
    /// The auction being bid on.
    pub auction: u64,
    /// The bidding person's id.
    pub bidder: u64,
    /// Bid price in cents.
    pub price: u64,
    /// Marketing channel, padding the record toward the paper's ~84 B
    /// serialized bids.
    pub channel: String,
    /// Event time of the bid.
    pub date_time: Timestamp,
}

/// One event of the auction stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A new person registered.
    Person(Person),
    /// A new auction opened.
    Auction(Auction),
    /// A bid was placed.
    Bid(Bid),
}

impl Event {
    /// The event's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            Event::Person(p) => p.date_time,
            Event::Auction(a) => a.date_time,
            Event::Bid(b) => b.date_time,
        }
    }

    /// Serializes the event into a tagged binary record.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Event::Person(p) => {
                buf.push(0);
                put_varint_u64(&mut buf, p.id);
                put_len_prefixed(&mut buf, p.name.as_bytes());
                put_len_prefixed(&mut buf, p.state.as_bytes());
                put_varint_i64(&mut buf, p.date_time);
            }
            Event::Auction(a) => {
                buf.push(1);
                put_varint_u64(&mut buf, a.id);
                put_varint_u64(&mut buf, a.seller);
                put_varint_u64(&mut buf, u64::from(a.category));
                put_varint_u64(&mut buf, a.initial_bid);
                put_varint_i64(&mut buf, a.date_time);
                put_varint_i64(&mut buf, a.expires);
            }
            Event::Bid(b) => {
                buf.push(2);
                put_varint_u64(&mut buf, b.auction);
                put_varint_u64(&mut buf, b.bidder);
                put_varint_u64(&mut buf, b.price);
                put_len_prefixed(&mut buf, b.channel.as_bytes());
                put_varint_i64(&mut buf, b.date_time);
            }
        }
        buf
    }

    /// Parses an event from [`Event::encode`] output.
    pub fn decode(data: &[u8]) -> Result<Event> {
        let mut dec = Decoder::new(data);
        let tag = dec.take(1, "event tag")?[0];
        Ok(match tag {
            0 => Event::Person(Person {
                id: dec.get_varint_u64()?,
                name: utf8(dec.get_len_prefixed()?)?,
                state: utf8(dec.get_len_prefixed()?)?,
                date_time: dec.get_varint_i64()?,
            }),
            1 => Event::Auction(Auction {
                id: dec.get_varint_u64()?,
                seller: dec.get_varint_u64()?,
                category: dec.get_varint_u64()? as u32,
                initial_bid: dec.get_varint_u64()?,
                date_time: dec.get_varint_i64()?,
                expires: dec.get_varint_i64()?,
            }),
            2 => Event::Bid(Bid {
                auction: dec.get_varint_u64()?,
                bidder: dec.get_varint_u64()?,
                price: dec.get_varint_u64()?,
                channel: utf8(dec.get_len_prefixed()?)?,
                date_time: dec.get_varint_i64()?,
            }),
            other => {
                return Err(StoreError::invalid_state(format!(
                    "unknown event tag {other}"
                )))
            }
        })
    }

    /// Decodes only when the event is a bid, skipping others cheaply.
    pub fn decode_bid(data: &[u8]) -> Result<Option<Bid>> {
        if data.first() != Some(&2) {
            return Ok(None);
        }
        match Event::decode(data)? {
            Event::Bid(b) => Ok(Some(b)),
            _ => unreachable!("tag checked"),
        }
    }
}

fn utf8(bytes: &[u8]) -> Result<String> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| StoreError::invalid_state("invalid UTF-8 in event".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bid() -> Bid {
        Bid {
            auction: 1007,
            bidder: 42,
            price: 1_234_567,
            channel: "channel-apps-like-Gmail".to_string(),
            date_time: 987_654,
        }
    }

    #[test]
    fn roundtrip_all_variants() {
        let events = vec![
            Event::Person(Person {
                id: 5,
                name: "Alice Johnson".into(),
                state: "OR".into(),
                date_time: 1000,
            }),
            Event::Auction(Auction {
                id: 77,
                seller: 5,
                category: 10,
                initial_bid: 100,
                date_time: 2000,
                expires: 50_000,
            }),
            Event::Bid(sample_bid()),
        ];
        for e in events {
            assert_eq!(Event::decode(&e.encode()).unwrap(), e);
        }
    }

    #[test]
    fn decode_bid_skips_non_bids() {
        let p = Event::Person(Person {
            id: 1,
            name: "x".into(),
            state: "CA".into(),
            date_time: 0,
        });
        assert_eq!(Event::decode_bid(&p.encode()).unwrap(), None);
        let b = Event::Bid(sample_bid());
        assert_eq!(Event::decode_bid(&b.encode()).unwrap(), Some(sample_bid()));
    }

    #[test]
    fn timestamps_extracted() {
        assert_eq!(Event::Bid(sample_bid()).timestamp(), 987_654);
    }

    #[test]
    fn unknown_tag_is_error() {
        assert!(Event::decode(&[9]).is_err());
    }
}
