//! Criterion micro-benchmarks of the three access patterns at the
//! store level (no engine), one group per pattern.
//!
//! These complement the figure harnesses: they isolate pure store cost
//! for the exact operation mixes the paper's patterns generate, and back
//! the ablation claims in DESIGN.md (e.g. AAR needs no compaction, AUR
//! batching beats per-window reads).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flowkv_common::backend::{
    AggregateKind, OperatorContext, OperatorSemantics, StateBackend, WindowKind,
};
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::WindowId;
use flowkv_spe::{BackendChoice, FactoryOptions};

/// Backends under comparison (the in-memory store is not a persistent
/// competitor and is omitted, as in the paper's Figure 10).
fn backends() -> Vec<BackendChoice> {
    flowkv_bench::bench_backends(usize::MAX)
        .into_iter()
        .skip(1)
        .collect()
}

fn make(
    choice: &BackendChoice,
    semantics: OperatorSemantics,
) -> (Box<dyn StateBackend>, ScratchDir) {
    let dir = ScratchDir::new(&format!("micro-{}", choice.name())).unwrap();
    let ctx = OperatorContext {
        operator: "micro".into(),
        partition: 0,
        semantics,
        data_dir: dir.path().to_path_buf(),
        telemetry: None,
        io: None,
    };
    (
        choice.build(FactoryOptions::new()).create(&ctx).unwrap(),
        dir,
    )
}

/// AAR: append a window's worth of tuples across many keys, then drain
/// the window with chunked reads.
fn bench_aar(c: &mut Criterion) {
    let mut group = c.benchmark_group("aar_append_drain");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    let semantics =
        OperatorSemantics::new(AggregateKind::FullList, WindowKind::Fixed { size: 1_000 });
    let keys = 200u64;
    let per_key = 20u64;
    for choice in backends() {
        group.bench_function(BenchmarkId::from_parameter(choice.name()), |b| {
            b.iter_batched(
                || make(&choice, semantics),
                |(mut store, _dir)| {
                    let w = WindowId::new(0, 1_000);
                    for i in 0..keys * per_key {
                        let key = (i % keys).to_le_bytes();
                        store.append(&key, w, &[7u8; 64], i as i64).unwrap();
                    }
                    let mut total = 0usize;
                    while let Some(chunk) = store.get_window_chunk(w).unwrap() {
                        total += chunk.len();
                    }
                    assert!(total >= keys as usize);
                    store.close().unwrap();
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

/// AUR: session-style appends to per-key windows, flushed to disk, then
/// consumed in trigger order (ascending timestamps).
fn bench_aur(c: &mut Criterion) {
    let mut group = c.benchmark_group("aur_session_take");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    let semantics =
        OperatorSemantics::new(AggregateKind::FullList, WindowKind::Session { gap: 100 });
    let keys = 200u64;
    let per_key = 10u64;
    for choice in backends() {
        group.bench_function(BenchmarkId::from_parameter(choice.name()), |b| {
            b.iter_batched(
                || {
                    let (mut store, dir) = make(&choice, semantics);
                    for k in 0..keys {
                        let window = WindowId::new(k as i64 * 10, k as i64 * 10 + 100);
                        for j in 0..per_key {
                            store
                                .append(
                                    &k.to_le_bytes(),
                                    window,
                                    &[5u8; 48],
                                    k as i64 * 10 + j as i64,
                                )
                                .unwrap();
                        }
                    }
                    store.flush().unwrap();
                    (store, dir)
                },
                |(mut store, _dir)| {
                    for k in 0..keys {
                        let window = WindowId::new(k as i64 * 10, k as i64 * 10 + 100);
                        let values = store.take_values(&k.to_le_bytes(), window).unwrap();
                        assert_eq!(values.len(), per_key as usize);
                    }
                    store.close().unwrap();
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

/// RMW: take/put aggregate cycles over a working set of keys.
fn bench_rmw(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmw_cycle");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    let semantics = OperatorSemantics::new(
        AggregateKind::Incremental,
        WindowKind::Fixed { size: 1_000 },
    );
    let keys = 500u64;
    let rounds = 20u64;
    for choice in backends() {
        group.bench_function(BenchmarkId::from_parameter(choice.name()), |b| {
            b.iter_batched(
                || make(&choice, semantics),
                |(mut store, _dir)| {
                    let w = WindowId::new(0, 1_000);
                    for round in 0..rounds {
                        for k in 0..keys {
                            let key = k.to_le_bytes();
                            let acc = store
                                .take_aggregate(&key, w)
                                .unwrap()
                                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                                .unwrap_or(0);
                            store
                                .put_aggregate(&key, w, &(acc + round).to_le_bytes())
                                .unwrap();
                        }
                    }
                    store.close().unwrap();
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aar, bench_aur, bench_rmw);
criterion_main!(benches);
