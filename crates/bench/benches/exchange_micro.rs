//! Criterion micro-benchmarks of the two hot-path kernels tuned for the
//! micro-batched exchange:
//!
//! - `exchange`: cross-thread tuple transfer over the same bounded
//!   crossbeam channels the executor uses, at exchange batch sizes
//!   1/64/256 — isolating the per-message synchronization cost that
//!   micro-batching amortizes;
//! - `crc32`: the record checksum (`flowkv_common::codec::crc32`,
//!   slicing-by-8) at log-record-relevant payload sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbeam::channel::bounded;
use flowkv_common::codec::crc32;

/// Mirrors the executor's channel capacity.
const CHANNEL_CAPACITY: usize = 256;
/// Tuples transferred per measured iteration.
const TUPLES: usize = 65_536;

/// A stand-in for `Stamped`: a small owned payload plus an origin stamp.
#[derive(Debug)]
struct FakeTuple {
    payload: [u8; 32],
    origin: u64,
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_batch_size");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    for batch_size in [1usize, 64, 256] {
        group.bench_function(BenchmarkId::from_parameter(batch_size), |b| {
            b.iter(|| {
                let (tx, rx) = bounded::<Vec<FakeTuple>>(CHANNEL_CAPACITY);
                let consumer = std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(batch) = rx.recv() {
                        for t in &batch {
                            sum = sum.wrapping_add(t.origin + u64::from(t.payload[0]));
                        }
                    }
                    sum
                });
                let mut pending = Vec::with_capacity(batch_size);
                for i in 0..TUPLES {
                    pending.push(FakeTuple {
                        payload: [i as u8; 32],
                        origin: i as u64,
                    });
                    if pending.len() >= batch_size {
                        tx.send(std::mem::replace(
                            &mut pending,
                            Vec::with_capacity(batch_size),
                        ))
                        .unwrap();
                    }
                }
                if !pending.is_empty() {
                    tx.send(pending).unwrap();
                }
                drop(tx);
                consumer.join().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_crc32(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    group.measurement_time(Duration::from_secs(5));
    for (label, len) in [("64B", 64usize), ("4KiB", 4 << 10), ("1MiB", 1 << 20)] {
        let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| crc32(&data));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exchange, bench_crc32);
criterion_main!(benches);
