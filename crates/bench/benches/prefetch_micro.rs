//! Criterion micro-benchmark of the prefetch-buffer membership probe.
//!
//! `predictive_batch_read` probes [`PrefetchBuffer::contains`] for every
//! candidate window when selecting what to load, so misses dominate the
//! probe traffic. The buffer's nested `key → window` map answers a
//! borrowed `&[u8]` directly; this bench pits it against the previous
//! layout — one map keyed by the `(Vec<u8>, WindowId)` tuple, which
//! forced a `key.to_vec()` allocation on every probe, hit or miss.
//!
//! Hits and misses are measured separately: the tuple layout pays the
//! allocation in both, while the nested layout's miss probe stops at the
//! outer map without ever hashing the window.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flowkv::aur::prefetch::PrefetchBuffer;
use flowkv_common::types::WindowId;

const KEYS: usize = 512;
const WINDOWS: usize = 4;

fn key(i: usize) -> Vec<u8> {
    format!("person-{i:06}-session").into_bytes()
}

fn window(j: usize) -> WindowId {
    WindowId::new(j as i64 * 1_000, (j as i64 + 1) * 1_000)
}

/// The pre-optimization layout: tuple-keyed, allocating per probe.
#[derive(Default)]
struct TupleKeyed {
    map: HashMap<(Vec<u8>, WindowId), Vec<Vec<u8>>>,
}

impl TupleKeyed {
    fn insert(&mut self, key: Vec<u8>, window: WindowId, values: Vec<Vec<u8>>) {
        self.map.insert((key, window), values);
    }

    fn contains(&self, key: &[u8], window: WindowId) -> bool {
        // The tuple key cannot borrow its `Vec<u8>` component, so every
        // membership probe pays an allocation + copy.
        self.map.contains_key(&(key.to_vec(), window))
    }
}

fn populated() -> (PrefetchBuffer, TupleKeyed) {
    let mut buf = PrefetchBuffer::new();
    let mut old = TupleKeyed::default();
    for i in 0..KEYS {
        for j in 0..WINDOWS {
            buf.extend((key(i), window(j)), vec![vec![0u8; 48]]);
            old.insert(key(i), window(j), vec![vec![0u8; 48]]);
        }
    }
    (buf, old)
}

fn probe_all(probe: impl Fn(&[u8], WindowId) -> bool, keys: &[Vec<u8>]) -> usize {
    let mut hits = 0usize;
    for k in keys {
        for j in 0..WINDOWS {
            hits += usize::from(probe(std::hint::black_box(k), window(j)));
        }
    }
    std::hint::black_box(hits)
}

fn bench_contains(c: &mut Criterion) {
    let (buf, old) = populated();
    let hit_keys: Vec<Vec<u8>> = (0..KEYS).map(key).collect();
    let miss_keys: Vec<Vec<u8>> = (KEYS..KEYS * 2).map(key).collect();

    for (mix, keys) in [("hit", &hit_keys), ("miss", &miss_keys)] {
        // Untimed warm pass: the harness has no warmup phase, and the
        // first timed routine would otherwise absorb the cold caches.
        probe_all(|k, w| buf.contains(k, w), keys);
        probe_all(|k, w| old.contains(k, w), keys);

        let name = format!("prefetch_contains_{mix}");
        let mut group = c.benchmark_group(&name);
        group.measurement_time(Duration::from_secs(5));
        group.sample_size(60);
        group.bench_function(BenchmarkId::from_parameter("borrowed_key"), |b| {
            b.iter(|| probe_all(|k, w| buf.contains(k, w), keys))
        });
        group.bench_function(BenchmarkId::from_parameter("tuple_key_alloc"), |b| {
            b.iter(|| probe_all(|k, w| old.contains(k, w), keys))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_contains);
criterion_main!(benches);
