//! Cluster scaling and live-rescale cost: `fig13_scalability` taken to
//! the sharded runtime.
//!
//! Weak scaling over `run_cluster`: every worker receives `BASE_EVENTS *
//! scale` source events, so the stream grows with the worker count N ∈
//! {1, 2, 4, 8} and ideal scaling means throughput grows linearly in N.
//! Each of the three FlowKV access patterns runs at every N — Q7 (AAR),
//! Q11-Median (AUR), Q11 (RMW) — on the FlowKV backend. One extra cell
//! rescales Q11-Median live from N=2 to N=4 at the stream midpoint and
//! reports the migration pause; its (sorted) output must checksum-match
//! the flat N=2 run over the same stream, asserting the rescale is
//! semantically invisible before any number is reported.
//!
//! Writes the grid to `BENCH_rescale.json` (override with `--out=`).
//! Like fig13, numbers flatten when the machine has fewer cores than
//! workers (the paper scales machines); the JSON records the core count.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin rescale_bench --
//! [--scale=1.0] [--timeout=300] [--max-workers=8]
//! [--out=BENCH_rescale.json]`

use std::time::Duration;

use flowkv_bench::{
    flowkv_cfg, header, row, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND,
};
use flowkv_common::codec::crc32;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::Tuple;
use flowkv_nexmark::{EventGenerator, QueryId, QueryParams};
use flowkv_spe::{run_cluster, BackendChoice, ClusterResult, FactoryOptions, JobError, RunOptions};

const QUERIES: [QueryId; 3] = [QueryId::Q7, QueryId::Q11Median, QueryId::Q11];

struct Cell {
    query: &'static str,
    pattern: &'static str,
    workers: usize,
    events: u64,
    window_ms: i64,
    tuples_per_sec: f64,
    elapsed_s: f64,
    outputs: u64,
    outputs_crc32: u32,
    outcome: String,
}

fn window_ms_for(events: u64) -> i64 {
    (events * 1_000 / EVENTS_PER_SECOND) as i64 / 8
}

/// Sorted-output checksum, byte-compatible with `pipeline_bench`.
fn checksum(outputs: &[Tuple]) -> u32 {
    let mut lines: Vec<Vec<u8>> = outputs
        .iter()
        .map(|t| {
            let mut line = t.key.clone();
            line.push(b'\t');
            line.extend_from_slice(&t.value);
            line.push(b'\t');
            line.extend_from_slice(&t.timestamp.to_be_bytes());
            line
        })
        .collect();
    lines.sort();
    crc32(&lines.concat())
}

/// One cluster run: `query` over `events` source events at `workers`
/// shards, optionally rescaling to `rescale_to` at the stream midpoint.
fn cluster_cell(
    query: QueryId,
    events: u64,
    workers: usize,
    rescale_to: Option<usize>,
    timeout: Duration,
) -> Result<ClusterResult, JobError> {
    let dir = ScratchDir::new(&format!("rescale-bench-{}-n{workers}", query.name()))
        .map_err(JobError::Store)?;
    let job = query.build(QueryParams::new(window_ms_for(events)).with_parallelism(1));
    let mut opts = RunOptions::new(dir.path().join("run"));
    opts.watermark_interval = 500;
    opts.timeout = Some(timeout);
    opts.workers = workers;
    if let Some(m) = rescale_to {
        opts.rescale_to = Some(m);
        opts.checkpoint_after_tuples = Some(events / 2);
        opts.checkpoint_dir = Some(dir.path().join("ckpt"));
    }
    run_cluster(
        &job,
        EventGenerator::new(workload(events, 11)).tuples(),
        BackendChoice::FlowKv(flowkv_cfg()).build(FactoryOptions::new()),
        &opts,
    )
}

fn to_cell(
    query: QueryId,
    workers: usize,
    events: u64,
    outcome: Result<ClusterResult, JobError>,
) -> Cell {
    match outcome {
        Ok(r) => Cell {
            query: query.name(),
            pattern: query.pattern(),
            workers,
            events,
            window_ms: window_ms_for(events),
            tuples_per_sec: r.throughput(),
            elapsed_s: r.elapsed.as_secs_f64(),
            outputs: r.output_count,
            outputs_crc32: checksum(&r.outputs),
            outcome: "ok".to_string(),
        },
        Err(e) => Cell {
            query: query.name(),
            pattern: query.pattern(),
            workers,
            events,
            window_ms: window_ms_for(events),
            tuples_per_sec: 0.0,
            elapsed_s: 0.0,
            outputs: 0,
            outputs_crc32: 0,
            outcome: match e {
                JobError::Timeout => "timeout".to_string(),
                other => format!("failed: {other}"),
            },
        },
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let base_events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let timeout = Duration::from_secs(args.u64("timeout", 300));
    let out_path = args.str("out", "BENCH_rescale.json");
    let max_workers = args.u64("max-workers", 8) as usize;
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&n| n <= max_workers)
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!(
        "rescale_bench: weak scaling, {base_events} events per worker, \
         N {worker_counts:?}, {cores} CPU core(s) available"
    );
    if cores < worker_counts.last().copied().unwrap_or(1) {
        eprintln!(
            "rescale_bench: WARNING — fewer cores than the largest worker count; \
             scaling will flatten at ~{cores} workers (the paper scales machines)"
        );
    }

    header(&[
        "query",
        "workers",
        "events",
        "tuples/s",
        "elapsed_s",
        "outputs",
        "outcome",
    ]);
    let mut cells: Vec<Cell> = Vec::new();
    for query in QUERIES {
        for &n in &worker_counts {
            let events = base_events * n as u64;
            let cell = to_cell(
                query,
                n,
                events,
                cluster_cell(query, events, n, None, timeout),
            );
            row(&[
                cell.query.to_string(),
                cell.workers.to_string(),
                cell.events.to_string(),
                format!("{:.0}", cell.tuples_per_sec),
                format!("{:.3}", cell.elapsed_s),
                cell.outputs.to_string(),
                cell.outcome.clone(),
            ]);
            cells.push(cell);
        }
    }

    // The live-rescale cell: Q11-Median over the N=2 stream, rescaling
    // 2→4 at the midpoint. Same events, same windows as the flat N=2
    // cell, so the checksums must agree.
    let mut rescale_json = "null".to_string();
    if worker_counts.contains(&2) && worker_counts.contains(&4) {
        let query = QueryId::Q11Median;
        let events = base_events * 2;
        let outcome = cluster_cell(query, events, 2, Some(4), timeout);
        match outcome {
            Ok(r) => {
                let pause = r.rescale_pause.expect("rescale must report its pause");
                let crc = checksum(&r.outputs);
                let flat = cells
                    .iter()
                    .find(|c| c.query == query.name() && c.workers == 2 && c.outcome == "ok")
                    .map(|c| c.outputs_crc32);
                if let Some(flat_crc) = flat {
                    assert_eq!(
                        crc, flat_crc,
                        "rescaled output diverged from the flat N=2 run \
                         (crc {crc:x} vs {flat_crc:x})"
                    );
                }
                row(&[
                    format!("{}(2→4)", query.name()),
                    "2→4".to_string(),
                    events.to_string(),
                    format!("{:.0}", r.throughput()),
                    format!("{:.3}", r.elapsed.as_secs_f64()),
                    r.output_count.to_string(),
                    format!("ok, pause {:.1} ms", pause.as_secs_f64() * 1e3),
                ]);
                rescale_json = format!(
                    "{{\"query\": \"{}\", \"from\": 2, \"to\": 4, \"events\": {events}, \
                     \"barrier_at\": {}, \"pause_ms\": {:.3}, \"tuples_per_sec\": {:.1}, \
                     \"outputs\": {}, \"outputs_crc32\": {}, \"matches_flat_n2\": {}, \
                     \"outcome\": \"ok\"}}",
                    query.name(),
                    events / 2,
                    pause.as_secs_f64() * 1e3,
                    r.throughput(),
                    r.output_count,
                    crc,
                    flat.map(|f| f == crc).unwrap_or(true),
                );
            }
            Err(e) => {
                let msg = match e {
                    JobError::Timeout => "timeout".to_string(),
                    other => format!("failed: {other}"),
                };
                row(&[
                    format!("{}(2→4)", query.name()),
                    "2→4".to_string(),
                    events.to_string(),
                    "0".to_string(),
                    "0.000".to_string(),
                    "0".to_string(),
                    msg.clone(),
                ]);
                rescale_json = format!("{{\"outcome\": \"{msg}\"}}");
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"rescale_scalability\",\n");
    json.push_str("  \"backend\": \"flowkv\",\n");
    json.push_str("  \"scaling\": \"weak\",\n");
    json.push_str(&format!("  \"base_events_per_worker\": {base_events},\n"));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!(
        "  \"worker_counts\": [{}],\n",
        worker_counts
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"pattern\": \"{}\", \"workers\": {}, \
             \"events\": {}, \"window_ms\": {}, \"tuples_per_sec\": {:.1}, \
             \"elapsed_s\": {:.3}, \"outputs\": {}, \"outputs_crc32\": {}, \
             \"outcome\": \"{}\"}}{}\n",
            c.query,
            c.pattern,
            c.workers,
            c.events,
            c.window_ms,
            c.tuples_per_sec,
            c.elapsed_s,
            c.outputs,
            c.outputs_crc32,
            c.outcome,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"rescale\": {rescale_json},\n"));
    json.push_str("  \"speedup_vs_n1\": {\n");
    for (qi, query) in QUERIES.iter().enumerate() {
        let tput = |n: usize| {
            cells
                .iter()
                .find(|c| c.query == query.name() && c.workers == n && c.outcome == "ok")
                .map(|c| c.tuples_per_sec)
        };
        let base = tput(1);
        let speedups: Vec<String> = worker_counts
            .iter()
            .map(|&n| match (base, tput(n)) {
                (Some(b), Some(t)) if b > 0.0 => format!("\"n{n}\": {:.3}", t / b),
                _ => format!("\"n{n}\": null"),
            })
            .collect();
        json.push_str(&format!(
            "    \"{}\": {{{}}}{}\n",
            query.name(),
            speedups.join(", "),
            if qi + 1 < QUERIES.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("rescale_bench: wrote {out_path}");
}
