//! Hot-only vs two-tier state layout at 10× the harness state size.
//!
//! Re-runs the fig8/fig9 pattern representatives — Q7 (AAR), Q11-Median
//! (AUR), Q11 (RMW) — on FlowKV and the LSM baseline with ten times the
//! default harness event count, so window state decisively outgrows the
//! stores' buffers. Each (query, backend) cell runs three ways:
//!
//! - `hot`: the plain store, exactly as fig8 runs it;
//! - `tiered`: wrapped in the two-tier layout with a small pinned hot
//!   budget — sealed windows demote to compressed columnar cold blocks
//!   and promote back on access;
//! - `tiered0`: the pathological `tier_hot_bytes = 0` cell — every
//!   write seals to a cold block immediately, so the whole run's state
//!   round-trips through the columnar codec.
//!
//! Every mode records fig8-style throughput and fig9-style end-to-end
//! p50/p99/p999, the `tier_*` telemetry (demotions, promotions,
//! compactions), and the cold tier's compression ratio
//! (uncompressed-bytes / cold-bytes-written). The harness asserts the
//! tier is semantically invisible — all three modes' sorted-output
//! checksums must be byte-identical per cell — before reporting.
//!
//! Writes the grid to `BENCH_tiered.json` (override with `--out=`).
//!
//! Usage: `cargo run --release -p flowkv-bench --bin tiered_bench --
//! [--scale=1.0] [--hot-kb=1024] [--timeout=1800] [--out=BENCH_tiered.json]`

use std::sync::Arc;
use std::time::Duration;

use flowkv_bench::{
    flowkv_cfg, lsm_cfg, run_cell, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND,
};
use flowkv_common::codec::crc32;
use flowkv_common::telemetry::{SampleValue, Telemetry};
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::BackendChoice;

/// 10× the fig8/fig9 harness default — the "state far larger than the
/// buffers" regime the tier exists for.
const STATE_MULTIPLIER: u64 = 10;

#[derive(Default)]
struct TierStats {
    demotions: u64,
    demoted_rows: u64,
    promotions: u64,
    cold_bytes_written: u64,
    uncompressed_bytes: u64,
    compactions: u64,
}

fn tier_stats(telemetry: &Telemetry) -> TierStats {
    let mut stats = TierStats::default();
    for sample in telemetry.registry().snapshot() {
        if let SampleValue::Counter(v) = sample.value {
            match sample.name.as_str() {
                "tier_demotions_total" => stats.demotions += v,
                "tier_demoted_rows_total" => stats.demoted_rows += v,
                "tier_promotions_total" => stats.promotions += v,
                "tier_cold_bytes_written_total" => stats.cold_bytes_written += v,
                "tier_uncompressed_bytes_total" => stats.uncompressed_bytes += v,
                "tier_compactions_total" => stats.compactions += v,
                _ => {}
            }
        }
    }
    stats
}

struct Cell {
    query: &'static str,
    pattern: &'static str,
    backend: &'static str,
    mode: &'static str,
    tuples_per_sec: f64,
    elapsed_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    outputs: u64,
    outputs_crc32: u32,
    tier: TierStats,
    outcome: String,
}

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * STATE_MULTIPLIER as f64 * args.scale()) as u64;
    // Moderate budget: smaller than one full-scale window's state per
    // partition, so every pattern demotes, in whole-window waves that
    // seal large blocks.
    let hot_bytes = args.u64("hot-kb", 1024) << 10;
    let timeout = Duration::from_secs(args.u64("timeout", 1800));
    let out_path = args.str("out", "BENCH_tiered.json");
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    let window_ms = (span_ms / 8).max(1);
    let params = QueryParams::new(window_ms).with_parallelism(2);

    eprintln!(
        "tiered_bench: {events} events ({STATE_MULTIPLIER}x harness state), window {window_ms} \
         ms, hot budget {hot_bytes} B"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for query in [QueryId::Q7, QueryId::Q11Median, QueryId::Q11] {
        for backend in [
            BackendChoice::FlowKv(flowkv_cfg()),
            BackendChoice::Lsm(lsm_cfg()),
        ] {
            for (mode, tier) in [
                ("hot", None),
                ("tiered", Some(hot_bytes)),
                ("tiered0", Some(0)),
            ] {
                let telemetry = Telemetry::new_shared();
                let handle = Arc::clone(&telemetry);
                let outcome =
                    run_cell(query, &backend, workload(events, 8), params, timeout, |o| {
                        o.collect_outputs = true;
                        o.record_latency = true;
                        o.watermark_interval = 100;
                        o.telemetry = Some(handle);
                        o.tier_hot_bytes = tier;
                    });
                let cell = match outcome.result() {
                    Some(r) => {
                        let mut lines: Vec<Vec<u8>> = r
                            .outputs
                            .iter()
                            .map(|t| {
                                let mut line = t.key.clone();
                                line.push(b'\t');
                                line.extend_from_slice(&t.value);
                                line.push(b'\t');
                                line.extend_from_slice(&t.timestamp.to_be_bytes());
                                line
                            })
                            .collect();
                        lines.sort();
                        Cell {
                            query: query.name(),
                            pattern: query.pattern(),
                            backend: backend.name(),
                            mode,
                            tuples_per_sec: r.throughput(),
                            elapsed_s: r.elapsed.as_secs_f64(),
                            p50_ms: r.latency.p50 as f64 / 1e6,
                            p99_ms: r.latency.p99 as f64 / 1e6,
                            p999_ms: r.latency.p999 as f64 / 1e6,
                            outputs: r.output_count,
                            outputs_crc32: crc32(&lines.concat()),
                            tier: tier_stats(&telemetry),
                            outcome: "ok".to_string(),
                        }
                    }
                    None => Cell {
                        query: query.name(),
                        pattern: query.pattern(),
                        backend: backend.name(),
                        mode,
                        tuples_per_sec: 0.0,
                        elapsed_s: 0.0,
                        p50_ms: 0.0,
                        p99_ms: 0.0,
                        p999_ms: 0.0,
                        outputs: 0,
                        outputs_crc32: 0,
                        tier: tier_stats(&telemetry),
                        outcome: outcome.throughput_cell(),
                    },
                };
                let ratio = if cell.tier.cold_bytes_written > 0 {
                    cell.tier.uncompressed_bytes as f64 / cell.tier.cold_bytes_written as f64
                } else {
                    0.0
                };
                eprintln!(
                    "  {} {} {}: {:.0} tuples/s, p999 {:.2} ms, {} demotions, \
                     {} promotions, compression {:.2}x ({})",
                    cell.query,
                    cell.backend,
                    cell.mode,
                    cell.tuples_per_sec,
                    cell.p999_ms,
                    cell.tier.demotions,
                    cell.tier.promotions,
                    ratio,
                    cell.outcome
                );
                cells.push(cell);
            }
        }
    }

    // The tier must be semantically invisible: per (query, backend)
    // cell, all completed modes produce byte-identical sorted output.
    for triple in cells.chunks(3) {
        let Some(hot) = triple.iter().find(|c| c.mode == "hot" && c.outcome == "ok") else {
            continue;
        };
        for tiered in triple.iter().filter(|c| c.mode != "hot") {
            if tiered.outcome == "ok" {
                assert_eq!(
                    hot.outputs_crc32, tiered.outputs_crc32,
                    "{} on {}: {} outputs diverge from hot-only (crc32 {:x} vs {:x})",
                    hot.query, hot.backend, tiered.mode, hot.outputs_crc32, tiered.outputs_crc32
                );
                // Only the forced cell is guaranteed to demote at every
                // scale; the moderate budget may hold the whole run at
                // small smoke scales.
                assert!(
                    tiered.mode != "tiered0" || tiered.tier.demotions > 0,
                    "{} on {}: tier_hot_bytes=0 run never demoted — the cell did not exercise \
                     the cold tier",
                    hot.query,
                    hot.backend
                );
            }
        }
    }
    eprintln!("tiered_bench: all completed modes byte-identical per cell");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"tiered_state\",\n");
    json.push_str(&format!("  \"events\": {events},\n"));
    json.push_str(&format!("  \"state_multiplier\": {STATE_MULTIPLIER},\n"));
    json.push_str(&format!("  \"window_ms\": {window_ms},\n"));
    json.push_str(&format!("  \"tier_hot_bytes\": {hot_bytes},\n"));
    json.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str("  \"parallelism\": 2,\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let ratio = if c.tier.cold_bytes_written > 0 {
            format!(
                "{:.4}",
                c.tier.uncompressed_bytes as f64 / c.tier.cold_bytes_written as f64
            )
        } else {
            "null".to_string()
        };
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"pattern\": \"{}\", \"backend\": \"{}\", \
             \"mode\": \"{}\", \"tuples_per_sec\": {:.1}, \"elapsed_s\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
             \"outputs\": {}, \"outputs_crc32\": {}, \"tier_demotions\": {}, \
             \"tier_demoted_rows\": {}, \"tier_promotions\": {}, \"tier_compactions\": {}, \
             \"cold_bytes_written\": {}, \"uncompressed_bytes\": {}, \
             \"compression_ratio\": {}, \"outcome\": \"{}\"}}{}\n",
            c.query,
            c.pattern,
            c.backend,
            c.mode,
            c.tuples_per_sec,
            c.elapsed_s,
            c.p50_ms,
            c.p99_ms,
            c.p999_ms,
            c.outputs,
            c.outputs_crc32,
            c.tier.demotions,
            c.tier.demoted_rows,
            c.tier.promotions,
            c.tier.compactions,
            c.tier.cold_bytes_written,
            c.tier.uncompressed_bytes,
            ratio,
            c.outcome,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"throughput_tiered_vs_hot\": {\n");
    let pairs: Vec<(&Cell, &Cell)> = cells
        .chunks(3)
        .filter_map(|triple| {
            let hot = triple
                .iter()
                .find(|c| c.mode == "hot" && c.outcome == "ok")?;
            let tiered = triple
                .iter()
                .find(|c| c.mode == "tiered" && c.outcome == "ok")?;
            Some((hot, tiered))
        })
        .collect();
    for (i, (hot, tiered)) in pairs.iter().enumerate() {
        let rel = if hot.tuples_per_sec > 0.0 {
            format!("{:.3}", tiered.tuples_per_sec / hot.tuples_per_sec)
        } else {
            "null".to_string()
        };
        json.push_str(&format!(
            "    \"{}-{}\": {rel}{}\n",
            hot.query,
            hot.backend,
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("tiered_bench: wrote {out_path}");
}
