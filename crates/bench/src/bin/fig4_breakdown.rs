//! Figure 4: execution-time breakdown of the baseline stores on the
//! three representative queries.
//!
//! The paper profiles Flink on RocksDB and Faster with perf/dstat and
//! splits execution time into query computation, store CPU, and I/O
//! wait. Our stores self-account their time (flowkv-common::metrics), so
//! the breakdown is: wall time, per-worker store seconds (write /
//! read+delete / compaction summed, divided by parallelism), and bytes
//! moved. FlowKV is included for contrast.
//!
//! Paper shape: for Q7 and Q11-Median (append patterns) the hash store
//! either dominates its runtime with store work or fails outright; for
//! Q11 (RMW) the LSM store pays heavy sorted-structure and compaction
//! CPU while the hash store is lean.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin fig4_breakdown
//! [--scale=4] [--timeout=120]`

use std::time::Duration;

use flowkv_bench::{
    bench_backends, header, row, run_cell, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND,
};
use flowkv_nexmark::{QueryId, QueryParams};

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let timeout = Duration::from_secs(args.u64("timeout", 120));
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    let window_ms = span_ms / 8;
    let parallelism = 2usize;

    eprintln!("fig4: {events} events, window {window_ms} ms, timeout {timeout:?}");
    header(&[
        "query",
        "backend",
        "wall_s",
        "store_cpu_s_per_worker",
        "write_s",
        "read_s",
        "compaction_s",
        "bytes_written_mb",
        "bytes_read_mb",
        "outcome",
    ]);
    for query in [QueryId::Q7, QueryId::Q11Median, QueryId::Q11] {
        let params = QueryParams::new(window_ms).with_parallelism(parallelism);
        // Skip the in-memory store: Figure 4 profiles the persistent
        // baselines (FlowKV shown for contrast with Figure 10).
        for backend in bench_backends(usize::MAX).into_iter().skip(1) {
            let outcome = run_cell(
                query,
                &backend,
                workload(events, 4),
                params,
                timeout,
                |_| {},
            );
            match outcome.result() {
                Some(r) => {
                    let m = &r.store_metrics;
                    let per_worker = m.total_store_nanos() as f64 / parallelism as f64 / 1e9;
                    row(&[
                        query.name().to_string(),
                        backend.name().to_string(),
                        format!("{:.2}", r.elapsed.as_secs_f64()),
                        format!("{per_worker:.2}"),
                        format!("{:.2}", m.write_nanos as f64 / 1e9),
                        format!("{:.2}", m.read_nanos as f64 / 1e9),
                        format!("{:.2}", m.compaction_nanos as f64 / 1e9),
                        format!("{:.1}", m.bytes_written as f64 / 1e6),
                        format!("{:.1}", m.bytes_read as f64 / 1e6),
                        "ok".to_string(),
                    ]);
                }
                None => row(&[
                    query.name().to_string(),
                    backend.name().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    outcome.throughput_cell(),
                ]),
            }
        }
    }
}
