//! Figure 11: effect of the predictive-batch-read ratio on throughput
//! (a) and prefetch hit ratio (b) for the AUR queries.
//!
//! Paper shape: ratio 0 (prefetching disabled) reaches only ~38–40 % of
//! the best throughput; the curve saturates at ratio ≈ 0.02, where the
//! hit ratio is already ~0.93 — larger ratios only prefetch windows
//! unlikely to be read. Read amplification follows Eq. 1: 1 / hit-ratio.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin fig11_batch_ratio
//! [--scale=4] [--timeout=180]`

use std::time::Duration;

use flowkv::FlowKvConfig;
use flowkv_bench::{
    flowkv_cfg, header, row, run_cell, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND,
};

/// A sensitivity-analysis configuration: a deliberately small write
/// buffer keeps the AUR disk machinery (index log, batch reads,
/// compaction) fully engaged at harness scale, as the paper's 400 GB
/// streams do to its 2 GiB buffers.
fn stressed_cfg() -> FlowKvConfig {
    flowkv_cfg().with_write_buffer_bytes(128 << 10)
}
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::BackendChoice;

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let timeout = Duration::from_secs(args.u64("timeout", 180));
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    let window_ms = span_ms / 8;
    let ratios = [0.0, 0.01, 0.02, 0.05, 0.1];

    eprintln!("fig11: {events} events, window {window_ms} ms, ratios {ratios:?}");
    header(&[
        "query",
        "read_batch_ratio",
        "mevents_per_s",
        "hit_ratio",
        "read_amplification",
        "prefetch_evictions",
        "outcome",
    ]);
    for query in [QueryId::Q11Median, QueryId::Q7Session] {
        let params = QueryParams::new(window_ms).with_parallelism(2);
        for &ratio in &ratios {
            let backend = BackendChoice::FlowKv(stressed_cfg().with_read_batch_ratio(ratio));
            let outcome = run_cell(
                query,
                &backend,
                workload(events, 11),
                params,
                timeout,
                |_| {},
            );
            match outcome.result() {
                Some(r) => {
                    let hit = r.store_metrics.prefetch_hit_ratio();
                    // Paper Eq. 1: each tuple is read 1/r times on average.
                    let amp = hit
                        .filter(|h| *h > 0.0)
                        .map(|h| format!("{:.3}", 1.0 / h))
                        .unwrap_or_else(|| "-".into());
                    row(&[
                        query.name().to_string(),
                        format!("{ratio}"),
                        format!("{:.3}", r.throughput() / 1e6),
                        hit.map(|h| format!("{h:.3}")).unwrap_or_else(|| "0".into()),
                        amp,
                        r.store_metrics.prefetch_evictions.to_string(),
                        "ok".to_string(),
                    ]);
                }
                None => row(&[
                    query.name().to_string(),
                    format!("{ratio}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    outcome.throughput_cell(),
                ]),
            }
        }
    }
}
