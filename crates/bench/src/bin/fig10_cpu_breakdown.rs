//! Figure 10: store CPU time split into write, read & delete, and
//! compaction for Q7, Q11-Median, and Q11.
//!
//! Paper shape: FlowKV spends 1.75–10.56× less store CPU than the
//! competitive baseline on each query — no compaction at all on Q7
//! (per-window files are deleted, not compacted), cheap batched reads on
//! Q11-Median, and no synchronization tax on Q11.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin fig10_cpu_breakdown
//! [--scale=4] [--timeout=120]`

use std::time::Duration;

use flowkv_bench::{
    bench_backends, header, row, run_cell, secs, workload, HarnessArgs, BASE_EVENTS,
    EVENTS_PER_SECOND,
};
use flowkv_nexmark::{QueryId, QueryParams};

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let timeout = Duration::from_secs(args.u64("timeout", 120));
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    let window_ms = span_ms / 8;

    eprintln!("fig10: {events} events, window {window_ms} ms");
    header(&[
        "query",
        "backend",
        "write_s",
        "read_delete_s",
        "compaction_s",
        "total_store_s",
        "vs_flowkv",
        "outcome",
    ]);
    for query in [QueryId::Q7, QueryId::Q11Median, QueryId::Q11] {
        let params = QueryParams::new(window_ms).with_parallelism(2);
        let mut flowkv_total: Option<f64> = None;
        for backend in bench_backends(usize::MAX).into_iter().skip(1) {
            let outcome = run_cell(
                query,
                &backend,
                workload(events, 10),
                params,
                timeout,
                |_| {},
            );
            match outcome.result() {
                Some(r) => {
                    let m = &r.store_metrics;
                    let total = m.total_store_nanos() as f64 / 1e9;
                    if backend.name() == "flowkv" {
                        flowkv_total = Some(total);
                    }
                    let ratio = flowkv_total
                        .filter(|f| *f > 0.0)
                        .map(|f| format!("{:.2}x", total / f))
                        .unwrap_or_else(|| "-".into());
                    row(&[
                        query.name().to_string(),
                        backend.name().to_string(),
                        secs(m.write_nanos),
                        secs(m.read_nanos),
                        secs(m.compaction_nanos),
                        format!("{total:.3}"),
                        ratio,
                        "ok".to_string(),
                    ]);
                }
                None => row(&[
                    query.name().to_string(),
                    backend.name().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    outcome.throughput_cell(),
                ]),
            }
        }
    }
}
