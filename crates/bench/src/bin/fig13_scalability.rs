//! Figure 13: scalability of Q11-Median on FlowKV over 1–8 workers.
//!
//! The paper scales worker *machines*; FlowKV store instances are
//! share-nothing per partition, so the same code path is exercised by
//! scaling worker threads. Input grows with the worker count (weak
//! scaling) so per-worker state stays constant, as in the paper's setup.
//!
//! Paper shape: near-linear throughput growth.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin fig13_scalability
//! [--scale=4] [--timeout=300]`

use std::time::Duration;

use flowkv_bench::{
    flowkv_cfg, header, row, run_cell, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND,
};
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::BackendChoice;

fn main() {
    let args = HarnessArgs::parse();
    let base_events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let timeout = Duration::from_secs(args.u64("timeout", 300));
    let workers = [1usize, 2, 4, 8];

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "fig13: weak scaling, {base_events} events per worker, {cores} CPU core(s) available"
    );
    if cores < 8 {
        eprintln!(
            "fig13: WARNING — fewer cores than the largest worker count; \
             scaling will flatten at ~{cores} workers (the paper scales machines)"
        );
    }
    header(&[
        "workers",
        "events",
        "mevents_per_s",
        "speedup_vs_1",
        "outcome",
    ]);
    let mut base_throughput: Option<f64> = None;
    for &n in &workers {
        let events = base_events * n as u64;
        let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
        let params = QueryParams::new(span_ms / 8).with_parallelism(n);
        let backend = BackendChoice::FlowKv(flowkv_cfg());
        let outcome = run_cell(
            QueryId::Q11Median,
            &backend,
            workload(events, 13),
            params,
            timeout,
            |_| {},
        );
        match outcome.result() {
            Some(r) => {
                let tput = r.throughput();
                if n == 1 {
                    base_throughput = Some(tput);
                }
                let speedup = base_throughput
                    .filter(|b| *b > 0.0)
                    .map(|b| format!("{:.2}x", tput / b))
                    .unwrap_or_else(|| "-".into());
                row(&[
                    n.to_string(),
                    events.to_string(),
                    format!("{:.3}", tput / 1e6),
                    speedup,
                    "ok".to_string(),
                ]);
            }
            None => row(&[
                n.to_string(),
                events.to_string(),
                "-".into(),
                "-".into(),
                outcome.throughput_cell(),
            ]),
        }
    }
}
