//! Ablation: the number of store instances per operator (`m`, paper §3).
//!
//! FlowKV sub-partitions each operator's state into `m` independent
//! instances so compactions run on a fraction of the state. This harness
//! sweeps `m` on an AUR query with latency recording: larger `m` should
//! smooth tail latency (smaller, more frequent compactions) at similar
//! throughput, which is the paper's justification for `m = 2`.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin abl_store_instances
//! [--scale=1]`

use std::time::Duration;

use flowkv_bench::{
    flowkv_cfg, header, row, run_cell, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND,
};
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::BackendChoice;

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    let window_ms = span_ms / 8;
    let rate = args.u64("rate", 40_000);

    eprintln!("ablation m: {events} events at {rate}/s, window {window_ms} ms");
    header(&[
        "store_instances",
        "mevents_per_s",
        "p95_ms",
        "p99_ms",
        "max_ms",
        "compactions",
        "outcome",
    ]);
    for m in [1usize, 2, 4, 8] {
        // The stressed buffer keeps compaction active so the per-instance
        // compaction scope (the thing `m` controls) actually matters.
        // The total buffer scales with `m` so each instance keeps the
        // same 64 KiB: the sweep isolates compaction scope, not memory.
        let backend = BackendChoice::FlowKv(
            flowkv_cfg()
                .with_write_buffer_bytes((64 << 10) * m)
                .with_store_instances(m),
        );
        let params = QueryParams::new(window_ms).with_parallelism(2);
        let outcome = run_cell(
            QueryId::Q11Median,
            &backend,
            workload(events, 30),
            params,
            Duration::from_secs(300),
            |opts| {
                opts.rate_limit = Some(rate);
                opts.record_latency = true;
            },
        );
        match outcome.result() {
            Some(r) => row(&[
                m.to_string(),
                format!("{:.3}", r.throughput() / 1e6),
                format!("{:.2}", r.latency.p95 as f64 / 1e6),
                format!("{:.2}", r.latency.p99 as f64 / 1e6),
                format!("{:.2}", r.latency.max as f64 / 1e6),
                r.store_metrics.compactions.to_string(),
                "ok".to_string(),
            ]),
            None => row(&[
                m.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                outcome.throughput_cell(),
            ]),
        }
    }
}
