//! Cold-state tail latency with and without the background I/O ring.
//!
//! Runs one query per anticipatable access pattern — Q7 (AAR window
//! drains), Q11-Median (AUR predictive batch reads), Q11 (RMW over the
//! LSM baseline's block cache) — on FlowKV and the LSM baseline, once
//! fully synchronously and once with the per-worker I/O ring enabled.
//! Write buffers are harness-small so triggers read cold state from
//! disk, and the stores mount a `SlowVfs` that emulates device read
//! latency (`--read-delay-us`) — on a page-cache-warm filesystem the
//! stall the ring hides would not exist to measure.
//!
//! Both modes are paced at the same sub-saturation rate per cell (the
//! fig. 9 methodology — see `paced_rate`), so the comparison is at
//! equal throughput and tail latency measures read stalls, not queue
//! backlog. Each cell records throughput and end-to-end p50/p99/p999,
//! checksums its sorted outputs, and reads the `prefetch_*` telemetry
//! families for hit rate and ETT timeliness. The harness asserts the
//! ring is semantically invisible (sync and ring checksums equal per
//! cell pair and across repeats) before reporting any speedup.
//!
//! Writes the grid to `BENCH_prefetch.json` (override with `--out=`).
//!
//! Usage: `cargo run --release -p flowkv-bench --bin prefetch_bench --
//! [--scale=1.0] [--io-threads=2] [--read-delay-us=150] [--repeat=3]
//! [--timeout=300] [--out=BENCH_prefetch.json]`

use std::sync::Arc;
use std::time::Duration;

use flowkv::FlowKvConfig;
use flowkv_bench::{run_cell_with_vfs, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND};
use flowkv_common::codec::crc32;
use flowkv_common::telemetry::{SampleValue, Telemetry};
use flowkv_common::vfs::{SlowVfs, StdVfs};
use flowkv_lsm::DbConfig;
use flowkv_nexmark::{GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::BackendChoice;

/// FlowKV sized so window state spills to the data log well before its
/// trigger fires — the reads the ring exists to anticipate.
fn cold_flowkv_cfg() -> FlowKvConfig {
    FlowKvConfig::default()
        .with_write_buffer_bytes(64 << 10)
        .with_read_batch_ratio(0.1)
        // Generous space bound: every compaction bumps the store
        // generation, which invalidates all in-flight background reads
        // — the sync/ring comparison should measure prefetch, not
        // compaction churn.
        .with_max_space_amplification(4.0)
        .with_store_instances(2)
}

/// The LSM baseline with a write buffer and block cache small enough
/// that RMW point reads miss the cache and go to the SSTs.
fn cold_lsm_cfg() -> DbConfig {
    DbConfig {
        write_buffer_bytes: 32 << 10,
        block_size: 1024,
        block_cache_bytes: 64 << 10,
        l0_compaction_trigger: 4,
        level_base_bytes: 256 << 10,
        level_multiplier: 8,
        target_file_size: 64 << 10,
    }
}

/// The harness workload narrowed to a keyspace with enough per-key
/// repetition for the ETT model to predict session triggers.
fn cold_workload(events: u64) -> GeneratorConfig {
    GeneratorConfig {
        active_people: 400,
        active_auctions: 400,
        ..workload(events, 17)
    }
}

/// Paced feed rate per cell, ~60 % of the cell's measured synchronous
/// saturation throughput at the default read delay. Latency on an
/// unpaced run is queue backlog — whichever mode is marginally slower
/// reports its input queue, not its read stalls. Pacing both modes at
/// the same sub-saturation rate compares them at equal throughput,
/// which is where a trigger's synchronous read stall is visible as
/// tail latency (the paper's fig. 9 methodology).
fn paced_rate(query: QueryId, backend: &BackendChoice) -> u64 {
    match (query, backend.name()) {
        (QueryId::Q7, "flowkv") => 200_000,
        (QueryId::Q7, _) => 90_000,
        (QueryId::Q11Median, "flowkv") => 3_500,
        (QueryId::Q11Median, _) => 50_000,
        (QueryId::Q11, "flowkv") => 150_000,
        _ => 50_000,
    }
}

struct PrefetchStats {
    issued: u64,
    hits: u64,
    late: u64,
    wasted_bytes: u64,
    timeliness_count: u64,
    timeliness_mean_ms: f64,
}

/// Sums the prefetch-accuracy families across every store instance.
fn prefetch_stats(telemetry: &Telemetry) -> PrefetchStats {
    let mut stats = PrefetchStats {
        issued: 0,
        hits: 0,
        late: 0,
        wasted_bytes: 0,
        timeliness_count: 0,
        timeliness_mean_ms: 0.0,
    };
    let mut timeliness_sum = 0.0f64;
    for sample in telemetry.registry().snapshot() {
        match (&sample.value, sample.name.as_str()) {
            (SampleValue::Counter(v), n) if n.starts_with("prefetch_issued_total") => {
                stats.issued += v;
            }
            (SampleValue::Counter(v), n) if n.starts_with("prefetch_hits_total") => {
                stats.hits += v;
            }
            (SampleValue::Counter(v), n) if n.starts_with("prefetch_late_total") => {
                stats.late += v;
            }
            (SampleValue::Counter(v), n) if n.starts_with("prefetch_wasted_bytes") => {
                stats.wasted_bytes += v;
            }
            (SampleValue::Histogram(h), n) if n.starts_with("prefetch_timeliness_ms") => {
                stats.timeliness_count += h.count;
                timeliness_sum += h.mean() * h.count as f64;
            }
            _ => {}
        }
    }
    if stats.timeliness_count > 0 {
        stats.timeliness_mean_ms = timeliness_sum / stats.timeliness_count as f64;
    }
    stats
}

struct Cell {
    query: &'static str,
    pattern: &'static str,
    backend: &'static str,
    mode: &'static str,
    rate: u64,
    tuples_per_sec: f64,
    elapsed_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    outputs: u64,
    outputs_crc32: u32,
    prefetch: PrefetchStats,
    outcome: String,
}

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let io_threads = args.u64("io-threads", 2) as usize;
    let timeout = Duration::from_secs(args.u64("timeout", 300));
    let out_path = args.str("out", "BENCH_prefetch.json");
    // Best-of-N repeats per cell: scheduling noise on a shared machine
    // exceeds single-run tail effects, so each cell keeps its
    // least-disturbed (lowest-p999) completed run.
    let repeats = args.u64("repeat", 3).max(1);
    // Emulated device read latency (see `SlowVfs`): on a page-cache-warm
    // filesystem every "cold" read returns in microseconds, so the stall
    // the ring exists to hide would not exist to measure.
    let read_delay_us = args.u64("read-delay-us", 150);
    let vfs = SlowVfs::wrap(StdVfs::shared(), Duration::from_micros(read_delay_us));
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    let window_ms = (span_ms / 8).max(1);
    let params = QueryParams::new(window_ms).with_parallelism(2);

    eprintln!(
        "prefetch_bench: {events} events, window {window_ms} ms, ring {io_threads} threads, \
         read delay {read_delay_us} us"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for query in [QueryId::Q7, QueryId::Q11Median, QueryId::Q11] {
        for backend in [
            BackendChoice::FlowKv(cold_flowkv_cfg()),
            BackendChoice::Lsm(cold_lsm_cfg()),
        ] {
            let rate = paced_rate(query, &backend);
            for (mode, threads) in [("sync", 0usize), ("ring", io_threads)] {
                let run_once = || {
                    let telemetry = Telemetry::new_shared();
                    let handle = Arc::clone(&telemetry);
                    let outcome = run_cell_with_vfs(
                        query,
                        &backend,
                        Some(std::sync::Arc::clone(&vfs)),
                        cold_workload(events),
                        params,
                        timeout,
                        |o| {
                            o.collect_outputs = true;
                            o.record_latency = true;
                            o.rate_limit = Some(rate);
                            // Fine-grained ticks: prefetch submissions ride
                            // the watermark cadence, and a 500 ms tick makes
                            // every background batch huge and late.
                            o.watermark_interval = 100;
                            o.io_threads = threads;
                            o.telemetry = Some(handle);
                        },
                    );
                    match outcome.result() {
                        Some(r) => {
                            let mut lines: Vec<Vec<u8>> = r
                                .outputs
                                .iter()
                                .map(|t| {
                                    let mut line = t.key.clone();
                                    line.push(b'\t');
                                    line.extend_from_slice(&t.value);
                                    line.push(b'\t');
                                    line.extend_from_slice(&t.timestamp.to_be_bytes());
                                    line
                                })
                                .collect();
                            lines.sort();
                            Cell {
                                query: query.name(),
                                pattern: query.pattern(),
                                backend: backend.name(),
                                mode,
                                rate,
                                tuples_per_sec: r.throughput(),
                                elapsed_s: r.elapsed.as_secs_f64(),
                                p50_ms: r.latency.p50 as f64 / 1e6,
                                p99_ms: r.latency.p99 as f64 / 1e6,
                                p999_ms: r.latency.p999 as f64 / 1e6,
                                outputs: r.output_count,
                                outputs_crc32: crc32(&lines.concat()),
                                prefetch: prefetch_stats(&telemetry),
                                outcome: "ok".to_string(),
                            }
                        }
                        None => Cell {
                            query: query.name(),
                            pattern: query.pattern(),
                            backend: backend.name(),
                            mode,
                            rate,
                            tuples_per_sec: 0.0,
                            elapsed_s: 0.0,
                            p50_ms: 0.0,
                            p99_ms: 0.0,
                            p999_ms: 0.0,
                            outputs: 0,
                            outputs_crc32: 0,
                            prefetch: prefetch_stats(&telemetry),
                            outcome: outcome.throughput_cell(),
                        },
                    }
                };
                let mut best: Option<Cell> = None;
                for attempt in 0..repeats {
                    let cell = run_once();
                    eprintln!(
                        "  {} {} {} [{}/{}]: {:.0} tuples/s, p99 {:.2} ms, \
                         p999 {:.2} ms, {} issued / {} hits ({})",
                        cell.query,
                        cell.backend,
                        cell.mode,
                        attempt + 1,
                        repeats,
                        cell.tuples_per_sec,
                        cell.p99_ms,
                        cell.p999_ms,
                        cell.prefetch.issued,
                        cell.prefetch.hits,
                        cell.outcome
                    );
                    // Repeats must agree byte-for-byte before one is kept.
                    if let Some(b) = &best {
                        if b.outcome == "ok" && cell.outcome == "ok" {
                            assert_eq!(
                                b.outputs_crc32, cell.outputs_crc32,
                                "{} on {} ({}): outputs diverge across repeats",
                                cell.query, cell.backend, cell.mode
                            );
                        }
                    }
                    let better = match &best {
                        None => true,
                        Some(b) if b.outcome != "ok" => true,
                        Some(b) => cell.outcome == "ok" && cell.p999_ms < b.p999_ms,
                    };
                    if better {
                        best = Some(cell);
                    }
                }
                cells.push(best.expect("at least one repeat"));
            }
        }
    }

    // The ring must be semantically invisible: for every (query, backend)
    // pair whose runs completed, sync and ring outputs are byte-identical.
    for pair in cells.chunks(2) {
        let [sync, ring] = pair else { continue };
        if sync.outcome == "ok" && ring.outcome == "ok" {
            assert_eq!(
                sync.outputs_crc32, ring.outputs_crc32,
                "{} on {}: ring outputs diverge from sync (crc32 {:x} vs {:x})",
                sync.query, sync.backend, sync.outputs_crc32, ring.outputs_crc32
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"prefetch_ring\",\n");
    json.push_str(&format!("  \"events\": {events},\n"));
    json.push_str(&format!("  \"window_ms\": {window_ms},\n"));
    json.push_str(&format!("  \"io_threads\": {io_threads},\n"));
    json.push_str(&format!("  \"read_delay_us\": {read_delay_us},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str("  \"parallelism\": 2,\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let hit_rate = if c.prefetch.issued > 0 {
            format!("{:.4}", c.prefetch.hits as f64 / c.prefetch.issued as f64)
        } else {
            "null".to_string()
        };
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"pattern\": \"{}\", \"backend\": \"{}\", \
             \"mode\": \"{}\", \"rate_limit\": {}, \"tuples_per_sec\": {:.1}, \
             \"elapsed_s\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
             \"outputs\": {}, \"outputs_crc32\": {}, \"prefetch_issued\": {}, \
             \"prefetch_hits\": {}, \"prefetch_late\": {}, \"prefetch_wasted_bytes\": {}, \
             \"prefetch_hit_rate\": {}, \"timeliness_mean_ms\": {:.2}, \
             \"outcome\": \"{}\"}}{}\n",
            c.query,
            c.pattern,
            c.backend,
            c.mode,
            c.rate,
            c.tuples_per_sec,
            c.elapsed_s,
            c.p50_ms,
            c.p99_ms,
            c.p999_ms,
            c.outputs,
            c.outputs_crc32,
            c.prefetch.issued,
            c.prefetch.hits,
            c.prefetch.late,
            c.prefetch.wasted_bytes,
            hit_rate,
            c.prefetch.timeliness_mean_ms,
            c.outcome,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"p999_speedup_ring_vs_sync\": {\n");
    let pairs: Vec<(&Cell, &Cell)> = cells
        .chunks(2)
        .filter_map(|pair| match pair {
            [s, r] if s.outcome == "ok" && r.outcome == "ok" => Some((s, r)),
            _ => None,
        })
        .collect();
    for (i, (sync, ring)) in pairs.iter().enumerate() {
        let speedup = if ring.p999_ms > 0.0 {
            format!("{:.3}", sync.p999_ms / ring.p999_ms)
        } else {
            "null".to_string()
        };
        json.push_str(&format!(
            "    \"{}-{}\": {speedup}{}\n",
            sync.query,
            sync.backend,
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("prefetch_bench: wrote {out_path}");
}
