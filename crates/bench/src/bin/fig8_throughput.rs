//! Figure 8: throughput of the eight NEXMark queries on the four state
//! backends across three window sizes.
//!
//! Paper result to reproduce (shape, not absolute numbers):
//! - FlowKV beats the LSM baseline on every pattern (up to 4.12×) and the
//!   hash baseline on RMW (1.27–1.36×);
//! - the hash baseline collapses or fails on append-pattern queries;
//! - the in-memory store fails (OOM) once window state outgrows memory;
//! - gains grow with window size (state size) and compound on the
//!   consecutive-window queries Q5/Q5-Append.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin fig8_throughput
//! [--scale=4] [--timeout=120] [--inmem-kb=320]`

use std::time::Duration;

use flowkv_bench::{
    bench_backends, header, row, run_cell, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND,
};
use flowkv_nexmark::{QueryId, QueryParams};

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let timeout = Duration::from_secs(args.u64("timeout", 120));
    let inmem_budget = (args.u64("inmem-kb", 320) << 10) as usize;
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    // Three window sizes, proportional to the stream span the way the
    // paper's 500/1000/2000 s windows relate to its stream length.
    let window_sizes = [span_ms / 16, span_ms / 8, span_ms / 4];

    eprintln!(
        "fig8: {events} events, span {span_ms} ms, windows {window_sizes:?} ms, timeout {timeout:?}"
    );
    header(&[
        "query",
        "pattern",
        "window_ms",
        "backend",
        "mevents_per_s",
        "elapsed_s",
        "outputs",
    ]);
    for query in QueryId::all() {
        for &window_ms in &window_sizes {
            let params = QueryParams::new(window_ms).with_parallelism(2);
            for backend in bench_backends(inmem_budget) {
                let outcome = run_cell(
                    query,
                    &backend,
                    workload(events, 8),
                    params,
                    timeout,
                    |_| {},
                );
                let (elapsed, outputs) = outcome
                    .result()
                    .map(|r| {
                        (
                            format!("{:.2}", r.elapsed.as_secs_f64()),
                            r.output_count.to_string(),
                        )
                    })
                    .unwrap_or_else(|| ("-".into(), "-".into()));
                row(&[
                    query.name().to_string(),
                    query.pattern().to_string(),
                    window_ms.to_string(),
                    backend.name().to_string(),
                    outcome.throughput_cell(),
                    elapsed,
                    outputs,
                ]);
            }
        }
    }
}
