//! Ablation: does the semantic store choice matter? (paper §3.1, §4.1)
//!
//! Runs the *same aligned workload* — one fixed window of tuples across
//! many keys, appended then fully read — through (a) the AAR store FlowKV
//! would pick, and (b) the AUR store FlowKV would pick if the window
//! function were unknown (the custom-window fallback). The AAR layout
//! reads one per-window file sequentially and deletes it; the AUR layout
//! must take each key individually through index scans. The gap is the
//! value of classification, and quantifies the paper's remark that
//! misclassified custom windows degrade performance (§8).
//!
//! Usage: `cargo run --release -p flowkv-bench --bin abl_layout
//! [--keys=400] [--per-key=10] [--rounds=10]`

use std::sync::Arc;
use std::time::Instant;

use flowkv::aar::AarStore;
use flowkv::aur::{AurConfig, AurStore};
use flowkv::ett::EttPredictor;
use flowkv_bench::{header, row, HarnessArgs, HARNESS_BUFFER};
use flowkv_common::metrics::StoreMetrics;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::WindowId;

fn main() {
    let args = HarnessArgs::parse();
    let keys = args.u64("keys", 400);
    let per_key = args.u64("per-key", 10);
    let rounds = args.u64("rounds", 10);
    let value = vec![7u8; 64];

    eprintln!("ablation layout: {rounds} windows x {keys} keys x {per_key} values");
    header(&[
        "store",
        "elapsed_s",
        "windows_per_s",
        "bytes_read_mb",
        "compactions",
    ]);

    // (a) The aligned-read layout: per-window files, sequential drain.
    {
        let dir = ScratchDir::new("abl-aar").unwrap();
        let metrics = StoreMetrics::new_shared();
        let mut store =
            AarStore::open(dir.path(), HARNESS_BUFFER, 1024, Arc::clone(&metrics)).unwrap();
        let start = Instant::now();
        for round in 0..rounds {
            let w = WindowId::new(round as i64 * 1_000, round as i64 * 1_000 + 1_000);
            for i in 0..keys * per_key {
                let key = (i % keys).to_le_bytes();
                store.append(&key, w, &value).unwrap();
            }
            while store.get_window_chunk(w).unwrap().is_some() {}
        }
        let elapsed = start.elapsed();
        let m = metrics.snapshot();
        row(&[
            "aar (classified)".to_string(),
            format!("{:.2}", elapsed.as_secs_f64()),
            format!("{:.1}", rounds as f64 / elapsed.as_secs_f64()),
            format!("{:.1}", m.bytes_read as f64 / 1e6),
            m.compactions.to_string(),
        ]);
    }

    // (b) The unaligned-read fallback: global log + per-key index reads.
    {
        let dir = ScratchDir::new("abl-aur").unwrap();
        let metrics = StoreMetrics::new_shared();
        let cfg = AurConfig {
            write_buffer_bytes: HARNESS_BUFFER,
            read_batch_ratio: 0.02,
            max_space_amplification: 1.5,
        };
        // A custom window function without a predictor cannot estimate
        // trigger times (paper §8), so batch reads cannot help.
        let mut store = AurStore::open(
            dir.path(),
            cfg,
            EttPredictor::Unpredictable,
            Arc::clone(&metrics),
        )
        .unwrap();
        let start = Instant::now();
        for round in 0..rounds {
            let w = WindowId::new(round as i64 * 1_000, round as i64 * 1_000 + 1_000);
            for i in 0..keys * per_key {
                let key = (i % keys).to_le_bytes();
                store
                    .append(&key, w, &value, w.start + i as i64 % 1_000)
                    .unwrap();
            }
            for k in 0..keys {
                store.take(&k.to_le_bytes(), w).unwrap();
            }
        }
        let elapsed = start.elapsed();
        let m = metrics.snapshot();
        row(&[
            "aur (custom-window fallback)".to_string(),
            format!("{:.2}", elapsed.as_secs_f64()),
            format!("{:.1}", rounds as f64 / elapsed.as_secs_f64()),
            format!("{:.1}", m.bytes_read as f64 / 1e6),
            m.compactions.to_string(),
        ]);
    }

    // (c) The same fallback but with a predictor the user registered for
    //     the custom window (paper §8's suggested mitigation).
    {
        let dir = ScratchDir::new("abl-aur-hint").unwrap();
        let metrics = StoreMetrics::new_shared();
        let cfg = AurConfig {
            write_buffer_bytes: HARNESS_BUFFER,
            read_batch_ratio: 0.02,
            max_space_amplification: 1.5,
        };
        let mut store = AurStore::open(
            dir.path(),
            cfg,
            EttPredictor::WindowEnd,
            Arc::clone(&metrics),
        )
        .unwrap();
        let start = Instant::now();
        for round in 0..rounds {
            let w = WindowId::new(round as i64 * 1_000, round as i64 * 1_000 + 1_000);
            for i in 0..keys * per_key {
                let key = (i % keys).to_le_bytes();
                store
                    .append(&key, w, &value, w.start + i as i64 % 1_000)
                    .unwrap();
            }
            for k in 0..keys {
                store.take(&k.to_le_bytes(), w).unwrap();
            }
        }
        let elapsed = start.elapsed();
        let m = metrics.snapshot();
        row(&[
            "aur (custom + user ETT hint)".to_string(),
            format!("{:.2}", elapsed.as_secs_f64()),
            format!("{:.1}", rounds as f64 / elapsed.as_secs_f64()),
            format!("{:.1}", m.bytes_read as f64 / 1e6),
            m.compactions.to_string(),
        ]);
    }
}
