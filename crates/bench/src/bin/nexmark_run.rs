//! General-purpose NEXMark runner: one query, one backend, full knobs.
//!
//! The per-figure harnesses sweep fixed grids; this binary runs a single
//! configurable cell — handy for profiling, tuning, and ad-hoc
//! comparisons.
//!
//! Usage:
//! `cargo run --release -p flowkv-bench --bin nexmark_run -- \
//!   [--query=Q11-Median] [--backend=flowkv|lsm|hashkv|inmemory] \
//!   [--events=120000] [--window-ms=1500] [--parallelism=2] \
//!   [--rate=0] [--timeout=300] [--ratio=0.02] [--msa=1.5] \
//!   [--buffer-kb=1280] [--seed=1] \
//!   [--telemetry-out=run.jsonl] [--telemetry-interval-ms=250] \
//!   [--trace-out=run.trace.json] [--trace-sample=1]`
//!
//! `--telemetry-out=` attaches the telemetry subsystem and streams
//! periodic metric snapshots plus flight-recorder events (watermarks,
//! checkpoint barriers, ETT predictions) to the given JSONL file.
//!
//! `--trace-out=` enables causal span tracing and writes a Chrome
//! trace-event JSON file (load it at <https://ui.perfetto.dev> or feed
//! it to the `flowkv-trace` analyzer). `--trace-sample=N` traces every
//! Nth sealed source batch (default 1 = every batch when tracing is on).

use std::time::Duration;

use flowkv_bench::{flowkv_cfg, hashkv_cfg, lsm_cfg, run_cell, workload, CellOutcome, HarnessArgs};
use flowkv_nexmark::{GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::BackendChoice;

fn main() {
    let args = HarnessArgs::parse();
    let query_name = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("--query=").map(str::to_string))
        .unwrap_or_else(|| "Q11-Median".to_string());
    let query = QueryId::all()
        .into_iter()
        .find(|q| q.name().eq_ignore_ascii_case(&query_name))
        .unwrap_or_else(|| {
            eprintln!("unknown query {query_name}; options:");
            for q in QueryId::all() {
                eprintln!("  {}", q.name());
            }
            std::process::exit(2);
        });

    let backend_name = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("--backend=").map(str::to_string))
        .unwrap_or_else(|| "flowkv".to_string());
    let buffer = (args.u64("buffer-kb", 1280) << 10) as usize;
    let backend = match backend_name.as_str() {
        "flowkv" => BackendChoice::FlowKv(
            flowkv_cfg()
                .with_write_buffer_bytes(buffer)
                .with_read_batch_ratio(args.f64("ratio", 0.02))
                .with_max_space_amplification(args.f64("msa", 1.5)),
        ),
        "lsm" => {
            let mut cfg = lsm_cfg();
            cfg.write_buffer_bytes = buffer;
            BackendChoice::Lsm(cfg)
        }
        "hashkv" => {
            let mut cfg = hashkv_cfg();
            cfg.mem_budget = buffer;
            BackendChoice::HashKv(cfg)
        }
        "inmemory" => BackendChoice::InMemory {
            budget_per_partition: buffer,
        },
        other => {
            eprintln!("unknown backend {other}; options: flowkv lsm hashkv inmemory");
            std::process::exit(2);
        }
    };

    let events = args.u64("events", 120_000);
    let window_ms = args.u64("window-ms", 1_500) as i64;
    let parallelism = args.u64("parallelism", 2) as usize;
    let rate = args.u64("rate", 0);
    let telemetry_out = {
        let path = args.str("telemetry-out", "");
        (!path.is_empty()).then(|| std::path::PathBuf::from(path))
    };
    let telemetry_interval = Duration::from_millis(args.u64("telemetry-interval-ms", 250));
    let trace_out = {
        let path = args.str("trace-out", "");
        (!path.is_empty()).then(|| std::path::PathBuf::from(path))
    };
    let trace_sample = args.u64("trace-sample", 0);
    let gen_cfg = GeneratorConfig {
        seed: args.u64("seed", 1),
        ..workload(events, args.u64("seed", 1))
    };
    let params = QueryParams::new(window_ms).with_parallelism(parallelism);

    eprintln!(
        "{} on {backend_name}: {events} events, window {window_ms} ms, p={parallelism}{}",
        query.name(),
        if rate > 0 {
            format!(", paced at {rate}/s")
        } else {
            String::new()
        }
    );
    let outcome = run_cell(
        query,
        &backend,
        gen_cfg,
        params,
        Duration::from_secs(args.u64("timeout", 300)),
        |opts| {
            if rate > 0 {
                opts.rate_limit = Some(rate);
                opts.record_latency = true;
            }
            if let Some(path) = telemetry_out {
                eprintln!("telemetry -> {}", path.display());
                opts.telemetry_out = Some(path);
                opts.telemetry_interval = telemetry_interval;
            }
            if let Some(path) = trace_out {
                eprintln!("trace -> {}", path.display());
                opts.trace_out = Some(path);
            }
            if trace_sample > 0 {
                opts.trace_sample = trace_sample;
            }
        },
    );
    match outcome {
        CellOutcome::Ok(r) => {
            let m = &r.store_metrics;
            println!("outcome        ok");
            println!("throughput     {:.0} events/s", r.throughput());
            println!("elapsed        {:.3} s", r.elapsed.as_secs_f64());
            println!("outputs        {}", r.output_count);
            println!("dropped_late   {}", r.dropped_late);
            println!(
                "store_cpu      {:.3} s  (write {:.3}, read {:.3}, compaction {:.3})",
                m.total_store_nanos() as f64 / 1e9,
                m.write_nanos as f64 / 1e9,
                m.read_nanos as f64 / 1e9,
                m.compaction_nanos as f64 / 1e9
            );
            println!(
                "io             {:.1} MB written, {:.1} MB read, {} flushes, {} compactions",
                m.bytes_written as f64 / 1e6,
                m.bytes_read as f64 / 1e6,
                m.flushes,
                m.compactions
            );
            if let Some(hit) = m.prefetch_hit_ratio() {
                println!(
                    "prefetch       hit {:.3}, {} evictions (read amp {:.3})",
                    hit,
                    m.prefetch_evictions,
                    1.0 / hit.max(f64::MIN_POSITIVE)
                );
            }
            if rate > 0 {
                println!(
                    "latency        p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
                    r.latency.p50 as f64 / 1e6,
                    r.latency.p95 as f64 / 1e6,
                    r.latency.p99 as f64 / 1e6
                );
            }
        }
        other => println!("outcome        {}", other.throughput_cell()),
    }
}
