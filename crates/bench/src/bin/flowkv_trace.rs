//! Trace analyzer: validates a Chrome trace-event JSON file (as written
//! by `nexmark_run --trace-out=` or `RunOptions::trace_out`) and prints
//! the critical-path latency-attribution table.
//!
//! Usage:
//! `cargo run --release -p flowkv-bench --bin flowkv-trace -- \
//!   <trace.json> [--validate-only]`
//!
//! Exit codes: 0 on a valid trace, 1 when the file fails schema
//! validation, 2 on usage errors.

use flowkv_common::trace;

fn main() {
    let mut validate_only = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--validate-only" => validate_only = true,
            _ if arg.starts_with("--") => {
                eprintln!("unknown flag {arg}");
                std::process::exit(2);
            }
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: flowkv-trace <trace.json> [--validate-only]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let stats = match trace::validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid trace: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "{path}: {} events, {} spans, {} pids, {} lanes",
        stats.events, stats.spans, stats.pids, stats.lanes
    );
    if validate_only {
        return;
    }
    let events = match trace::parse_chrome_trace(&text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("invalid trace: {e}");
            std::process::exit(1);
        }
    };
    let attribution = trace::attribution(&events);
    print!("{}", trace::render_attribution(&attribution));
}
