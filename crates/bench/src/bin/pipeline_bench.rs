//! End-to-end pipeline throughput vs exchange batch size.
//!
//! Runs one query per FlowKV access pattern — Q7 (AAR), Q11-Median
//! (AUR), Q11 (RMW) — on FlowKV at a fixed scale, sweeping the exchange
//! `batch_size` over {1, 64, 256}. `batch_size = 1` is the classic
//! tuple-at-a-time exchange; larger sizes amortize channel
//! synchronization across micro-batches. Each run collects its outputs
//! and the harness checksums them (sorted), asserting that batching is
//! semantically invisible before reporting any speedup.
//!
//! Writes the grid to `BENCH_pipeline.json` (override with `--out=`).
//!
//! Usage: `cargo run --release -p flowkv-bench --bin pipeline_bench --
//! [--scale=1.0] [--timeout=300] [--out=BENCH_pipeline.json]`
//!
//! `--trace-overhead` instead measures the cost of span tracing on
//! Q11-Median at batch 256: untraced and fully-sampled traced runs
//! interleave, and the harness asserts the traced median is within 2%
//! of the untraced median plus the untraced runs' own relative spread.

use std::time::Duration;

use flowkv_bench::{flowkv_cfg, run_cell, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND};
use flowkv_common::codec::crc32;
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::BackendChoice;

const BATCH_SIZES: [usize; 3] = [1, 64, 256];

struct Cell {
    query: &'static str,
    pattern: &'static str,
    batch_size: usize,
    tuples_per_sec: f64,
    elapsed_s: f64,
    outputs: u64,
    outputs_crc32: u32,
    outcome: String,
}

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let timeout = Duration::from_secs(args.u64("timeout", 300));
    let out_path = args.str("out", "BENCH_pipeline.json");
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    let window_ms = span_ms / 8;
    let params = QueryParams::new(window_ms).with_parallelism(2);

    if std::env::args().any(|a| a == "--trace-overhead") {
        trace_overhead(events, params, timeout);
        return;
    }

    eprintln!(
        "pipeline_bench: {events} events, window {window_ms} ms, batch sizes {BATCH_SIZES:?}"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for query in [QueryId::Q7, QueryId::Q11Median, QueryId::Q11] {
        for &batch_size in &BATCH_SIZES {
            let backend = BackendChoice::FlowKv(flowkv_cfg());
            let outcome = run_cell(
                query,
                &backend,
                workload(events, 11),
                params,
                timeout,
                |o| {
                    o.batch_size = batch_size;
                    o.collect_outputs = true;
                },
            );
            let cell = match outcome.result() {
                Some(r) => {
                    // Checksum the sorted outputs: equal across batch
                    // sizes iff batching is semantically invisible.
                    let mut lines: Vec<Vec<u8>> = r
                        .outputs
                        .iter()
                        .map(|t| {
                            let mut line = t.key.clone();
                            line.push(b'\t');
                            line.extend_from_slice(&t.value);
                            line.push(b'\t');
                            line.extend_from_slice(&t.timestamp.to_be_bytes());
                            line
                        })
                        .collect();
                    lines.sort();
                    let checksum = crc32(&lines.concat());
                    Cell {
                        query: query.name(),
                        pattern: query.pattern(),
                        batch_size,
                        tuples_per_sec: r.throughput(),
                        elapsed_s: r.elapsed.as_secs_f64(),
                        outputs: r.output_count,
                        outputs_crc32: checksum,
                        outcome: "ok".to_string(),
                    }
                }
                None => Cell {
                    query: query.name(),
                    pattern: query.pattern(),
                    batch_size,
                    tuples_per_sec: 0.0,
                    elapsed_s: 0.0,
                    outputs: 0,
                    outputs_crc32: 0,
                    outcome: outcome.throughput_cell(),
                },
            };
            eprintln!(
                "  {} batch={batch_size}: {:.0} tuples/s ({})",
                cell.query, cell.tuples_per_sec, cell.outcome
            );
            cells.push(cell);
        }
    }

    // Batching must be invisible: every successful run of a query must
    // produce the same (sorted) output bytes.
    for query in [QueryId::Q7, QueryId::Q11Median, QueryId::Q11] {
        let checksums: Vec<u32> = cells
            .iter()
            .filter(|c| c.query == query.name() && c.outcome == "ok")
            .map(|c| c.outputs_crc32)
            .collect();
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "{}: outputs diverge across batch sizes (crc32s {checksums:x?})",
            query.name()
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"pipeline_batch_sweep\",\n");
    json.push_str("  \"backend\": \"flowkv\",\n");
    json.push_str(&format!("  \"events\": {events},\n"));
    json.push_str(&format!("  \"window_ms\": {window_ms},\n"));
    json.push_str("  \"parallelism\": 2,\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"pattern\": \"{}\", \"batch_size\": {}, \
             \"tuples_per_sec\": {:.1}, \"elapsed_s\": {:.3}, \"outputs\": {}, \
             \"outputs_crc32\": {}, \"outcome\": \"{}\"}}{}\n",
            c.query,
            c.pattern,
            c.batch_size,
            c.tuples_per_sec,
            c.elapsed_s,
            c.outputs,
            c.outputs_crc32,
            c.outcome,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_256_vs_1\": {\n");
    let queries = [QueryId::Q7, QueryId::Q11Median, QueryId::Q11];
    for (i, query) in queries.iter().enumerate() {
        let tput = |batch: usize| {
            cells
                .iter()
                .find(|c| c.query == query.name() && c.batch_size == batch && c.outcome == "ok")
                .map(|c| c.tuples_per_sec)
        };
        let speedup = match (tput(1), tput(256)) {
            (Some(base), Some(fast)) if base > 0.0 => format!("{:.3}", fast / base),
            _ => "null".to_string(),
        };
        json.push_str(&format!(
            "    \"{}\": {speedup}{}\n",
            query.name(),
            if i + 1 < queries.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("pipeline_bench: wrote {out_path}");
}

/// Measures span-tracing overhead on Q11-Median at batch 256 and
/// asserts the acceptance bound: median traced elapsed ≤ median
/// untraced elapsed × (1.02 + the untraced runs' own relative spread).
///
/// Untraced and traced runs interleave (U T U T U T — plus a discarded
/// warm-up) and the comparison uses medians, not minima: a single lucky
/// fast run would otherwise set a floor the other mode can't meet on a
/// noisy machine, reporting scheduler jitter as tracing cost.
fn trace_overhead(events: u64, params: QueryParams, timeout: Duration) {
    const REPEATS: usize = 5;
    eprintln!("trace_overhead: Q11-Median, {events} events, batch 256, sample 1");
    let run = |traced: bool| -> f64 {
        // The in-memory backend keeps the measurement CPU-bound: disk
        // stores make wall time bimodal (page cache, journaling), and
        // that jitter is store noise, not tracing cost — the traced
        // store path is exercised identically either way.
        let backend = BackendChoice::InMemory {
            budget_per_partition: 64 << 20,
        };
        let outcome = run_cell(
            QueryId::Q11Median,
            &backend,
            workload(events, 11),
            params,
            timeout,
            |o| {
                o.batch_size = 256;
                if traced {
                    o.trace_sample = 1;
                }
            },
        );
        match outcome.result() {
            Some(r) => r.elapsed.as_secs_f64(),
            None => panic!("trace-overhead run failed: {}", outcome.throughput_cell()),
        }
    };
    let median = |xs: &[f64]| -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    run(false); // warm-up: page cache, allocator, first-run compilation of the dirs
    let mut off = Vec::new();
    let mut on = Vec::new();
    for _ in 0..REPEATS {
        off.push(run(false));
        on.push(run(true));
    }
    let off_med = median(&off);
    let on_med = median(&on);
    let spread = (off.iter().cloned().fold(f64::MIN, f64::max)
        - off.iter().cloned().fold(f64::MAX, f64::min))
        / off_med;
    let overhead = on_med / off_med - 1.0;
    println!(
        "untraced_s     {} (median {off_med:.3})",
        off.iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(" / ")
    );
    println!(
        "traced_s       {} (median {on_med:.3})",
        on.iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(" / ")
    );
    println!("noise          {:.2}%", spread * 100.0);
    println!("overhead       {:.2}%", overhead * 100.0);
    assert!(
        overhead <= 0.02 + spread,
        "tracing overhead {:.2}% exceeds 2% + noise {:.2}%",
        overhead * 100.0,
        spread * 100.0
    );
    println!("outcome        ok");
}
