//! Figure 12: effect of the maximum space amplification (MSA) threshold
//! on AUR throughput.
//!
//! Paper shape: throughput rises as MSA grows (fewer compactions) but
//! flattens after MSA = 1.5 — the paper's recommended setting, trading
//! negligible throughput for bounded disk usage.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin fig12_msa
//! [--scale=4] [--timeout=180]`

use std::time::Duration;

use flowkv::FlowKvConfig;
use flowkv_bench::{
    flowkv_cfg, header, row, run_cell, workload, HarnessArgs, BASE_EVENTS, EVENTS_PER_SECOND,
};

/// A sensitivity-analysis configuration: a deliberately small write
/// buffer keeps the AUR disk machinery (index log, batch reads,
/// compaction) fully engaged at harness scale, as the paper's 400 GB
/// streams do to its 2 GiB buffers.
fn stressed_cfg() -> FlowKvConfig {
    flowkv_cfg().with_write_buffer_bytes(128 << 10)
}
use flowkv_nexmark::{QueryId, QueryParams};
use flowkv_spe::BackendChoice;

fn main() {
    let args = HarnessArgs::parse();
    let events = (BASE_EVENTS as f64 * args.scale()) as u64;
    let timeout = Duration::from_secs(args.u64("timeout", 180));
    let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
    let window_ms = span_ms / 8;
    let msas = [1.1, 1.25, 1.5, 2.0, 3.0];

    eprintln!("fig12: {events} events, window {window_ms} ms, MSA {msas:?}");
    header(&[
        "query",
        "msa",
        "mevents_per_s",
        "compactions",
        "compaction_s",
        "bytes_written_mb",
        "outcome",
    ]);
    for query in [QueryId::Q11Median, QueryId::Q7Session] {
        let params = QueryParams::new(window_ms).with_parallelism(2);
        for &msa in &msas {
            let backend = BackendChoice::FlowKv(stressed_cfg().with_max_space_amplification(msa));
            let outcome = run_cell(
                query,
                &backend,
                workload(events, 12),
                params,
                timeout,
                |_| {},
            );
            match outcome.result() {
                Some(r) => row(&[
                    query.name().to_string(),
                    format!("{msa}"),
                    format!("{:.3}", r.throughput() / 1e6),
                    r.store_metrics.compactions.to_string(),
                    format!("{:.3}", r.store_metrics.compaction_nanos as f64 / 1e9),
                    format!("{:.1}", r.store_metrics.bytes_written as f64 / 1e6),
                    "ok".to_string(),
                ]),
                None => row(&[
                    query.name().to_string(),
                    format!("{msa}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    outcome.throughput_cell(),
                ]),
            }
        }
    }
}
