//! Figure 9: P95 latency versus tuple rate for Q7, Q11-Median, and Q11.
//!
//! The paper feeds tuples at fixed rates through Kafka and measures
//! 95th-percentile end-to-end latency. Here a paced in-process source
//! plays Kafka's role; every output inherits the wall-clock origin of
//! the watermark that triggered it, so the sink observes end-to-end
//! latency including all store work.
//!
//! Paper shape: FlowKV holds low tail latency up to the highest rates;
//! the LSM baseline's latency inflates under load (compaction stalls);
//! the hash baseline fails on the append queries and gives up at high
//! rates; the in-memory store fails on the large-state queries.
//!
//! Usage: `cargo run --release -p flowkv-bench --bin fig9_latency
//! [--scale=1] [--seconds=4] [--inmem-kb=768]`

use std::time::Duration;

use flowkv_bench::{
    bench_backends, header, row, run_cell, workload, HarnessArgs, EVENTS_PER_SECOND,
};
use flowkv_nexmark::{QueryId, QueryParams};

fn main() {
    let args = HarnessArgs::parse();
    let feed_seconds = args.u64("seconds", 4).max(1);
    let inmem_budget = (args.u64("inmem-kb", 768) << 10) as usize;
    let rates: Vec<u64> = [25_000u64, 50_000, 100_000, 200_000]
        .iter()
        .map(|r| (*r as f64 * args.scale()) as u64)
        .collect();

    eprintln!("fig9: rates {rates:?} tuples/s, {feed_seconds}s of feed per point");
    header(&[
        "query",
        "backend",
        "rate_per_s",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "outcome",
    ]);
    for query in [QueryId::Q7, QueryId::Q11Median, QueryId::Q11] {
        for &rate in &rates {
            let events = rate * feed_seconds;
            // Windows sized so several close during the feed.
            let span_ms = (events * 1_000 / EVENTS_PER_SECOND) as i64;
            let params = QueryParams::new((span_ms / 8).max(1)).with_parallelism(2);
            let timeout = Duration::from_secs(feed_seconds * 10 + 30);
            for backend in bench_backends(inmem_budget) {
                let outcome = run_cell(
                    query,
                    &backend,
                    workload(events, 9),
                    params,
                    timeout,
                    |opts| {
                        opts.rate_limit = Some(rate);
                        opts.record_latency = true;
                        opts.watermark_interval = 200;
                    },
                );
                match outcome.result() {
                    Some(r) => row(&[
                        query.name().to_string(),
                        backend.name().to_string(),
                        rate.to_string(),
                        format!("{:.2}", r.latency.p50 as f64 / 1e6),
                        format!("{:.2}", r.latency.p95 as f64 / 1e6),
                        format!("{:.2}", r.latency.p99 as f64 / 1e6),
                        "ok".to_string(),
                    ]),
                    None => row(&[
                        query.name().to_string(),
                        backend.name().to_string(),
                        rate.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        outcome.throughput_cell(),
                    ]),
                }
            }
        }
    }
}
