//! Shared harness plumbing for the per-figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index). They share:
//!
//! - [`HarnessArgs`]: a tiny `--key=value` argument parser with a
//!   `--scale` knob that multiplies the event count (default sizes run
//!   each figure in minutes on a laptop);
//! - backend configurations scaled so that state actually spills to disk
//!   at harness event counts ([`bench_backends`]);
//! - [`run_cell`]: one measured query execution with OOM/timeout
//!   handling, returning a [`CellOutcome`] that prints like the paper's
//!   crossed bars when a system fails;
//! - TSV table output helpers.

use std::collections::HashMap;
use std::time::Duration;

use flowkv::FlowKvConfig;
use flowkv_common::scratch::ScratchDir;
use flowkv_hashkv::HashDbConfig;
use flowkv_lsm::DbConfig;
use flowkv_nexmark::{EventGenerator, GeneratorConfig, QueryId, QueryParams};
use flowkv_spe::executor::JobError;
use flowkv_spe::{run_job, BackendChoice, FactoryOptions, JobResult, RunOptions};

/// Parsed `--key=value` command-line arguments.
pub struct HarnessArgs {
    map: HashMap<String, String>,
}

impl HarnessArgs {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        for arg in std::env::args().skip(1) {
            if let Some(rest) = arg.strip_prefix("--") {
                if let Some((k, v)) = rest.split_once('=') {
                    map.insert(k.to_string(), v.to_string());
                }
            }
        }
        HarnessArgs { map }
    }

    /// Returns `--scale` (default 1.0); event counts multiply by it.
    pub fn scale(&self) -> f64 {
        self.f64("scale", 1.0)
    }

    /// A float argument with a default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// An integer argument with a default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string argument with a default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// Base event count that `--scale` multiplies.
pub const BASE_EVENTS: u64 = 120_000;

/// Event-time rate of the generated stream (events per stream-second).
pub const EVENTS_PER_SECOND: u64 = 10_000;

/// The write-buffer size used by every store in the harnesses, scaled so
/// harness-sized streams spill to disk the way the paper's 400 GB streams
/// spill past 2 GiB buffers.
pub const HARNESS_BUFFER: usize = 256 << 10;

/// Builds the generator config for `events` total events.
pub fn workload(events: u64, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        num_events: events,
        seed,
        first_ts: 0,
        events_per_second: EVENTS_PER_SECOND,
        active_people: 2_000,
        active_auctions: 2_000,
        hot_ratio: 0.1,
        out_of_order_ms: 0,
    }
}

/// FlowKV configured for harness scale (paper defaults otherwise).
///
/// Memory parity with the LSM baseline: the LSM gets `HARNESS_BUFFER` of
/// memtable plus a 1 MiB block cache, so FlowKV's write buffer gets the
/// same total (the paper likewise gives every store the machine's
/// remaining memory as buffers/caches, §6).
pub fn flowkv_cfg() -> FlowKvConfig {
    FlowKvConfig::default()
        .with_write_buffer_bytes(HARNESS_BUFFER + (1 << 20))
        .with_read_batch_ratio(0.02)
        .with_max_space_amplification(1.5)
        .with_store_instances(2)
}

/// The LSM baseline configured for harness scale.
pub fn lsm_cfg() -> DbConfig {
    DbConfig {
        write_buffer_bytes: HARNESS_BUFFER,
        block_size: 4096,
        block_cache_bytes: 1 << 20,
        l0_compaction_trigger: 4,
        level_base_bytes: 1 << 20,
        level_multiplier: 8,
        target_file_size: 512 << 10,
    }
}

/// The hash baseline configured for harness scale.
pub fn hashkv_cfg() -> HashDbConfig {
    HashDbConfig {
        mem_budget: HARNESS_BUFFER,
        max_space_amplification: 2.0,
        min_compact_bytes: 1 << 20,
        initial_index_capacity: 1 << 12,
    }
}

/// The four evaluated backends at harness scale.
///
/// `inmem_budget` bounds the in-memory store per partition, reproducing
/// the paper's fixed heap allocation.
pub fn bench_backends(inmem_budget: usize) -> Vec<BackendChoice> {
    vec![
        BackendChoice::InMemory {
            budget_per_partition: inmem_budget,
        },
        BackendChoice::FlowKv(flowkv_cfg()),
        BackendChoice::Lsm(lsm_cfg()),
        BackendChoice::HashKv(hashkv_cfg()),
    ]
}

/// One measured execution, or the reason it failed.
pub enum CellOutcome {
    /// The run completed.
    Ok(Box<JobResult>),
    /// The in-memory store exhausted its budget (paper: crossed bars).
    OutOfMemory,
    /// The wall-clock timeout expired (paper: Faster's append DNFs).
    Timeout,
    /// Another failure.
    Failed(String),
}

impl CellOutcome {
    /// Throughput in million events per second, or a failure marker.
    pub fn throughput_cell(&self) -> String {
        match self {
            CellOutcome::Ok(r) => format!("{:.3}", r.throughput() / 1e6),
            CellOutcome::OutOfMemory => "FAIL(oom)".to_string(),
            CellOutcome::Timeout => "FAIL(timeout)".to_string(),
            CellOutcome::Failed(_) => "FAIL".to_string(),
        }
    }

    /// The completed result, if any.
    pub fn result(&self) -> Option<&JobResult> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// Runs one `(query, backend)` cell over a fresh scratch directory.
pub fn run_cell(
    query: QueryId,
    backend: &BackendChoice,
    gen_cfg: GeneratorConfig,
    params: QueryParams,
    timeout: Duration,
    tune: impl FnOnce(&mut RunOptions),
) -> CellOutcome {
    run_cell_with_vfs(query, backend, None, gen_cfg, params, timeout, tune)
}

/// [`run_cell`] with the stores mounted on a caller-provided [`Vfs`] —
/// how the prefetch harness injects emulated device read latency.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_with_vfs(
    query: QueryId,
    backend: &BackendChoice,
    vfs: Option<std::sync::Arc<dyn flowkv_common::vfs::Vfs>>,
    gen_cfg: GeneratorConfig,
    params: QueryParams,
    timeout: Duration,
    tune: impl FnOnce(&mut RunOptions),
) -> CellOutcome {
    let dir = match ScratchDir::new(&format!("bench-{}-{}", query.name(), backend.name())) {
        Ok(d) => d,
        Err(e) => return CellOutcome::Failed(e.to_string()),
    };
    let job = query.build(params);
    let mut opts = RunOptions::new(dir.path());
    opts.watermark_interval = 500;
    opts.timeout = Some(timeout);
    tune(&mut opts);
    // When a harness asks for the JSONL stream without supplying its own
    // telemetry handle, create one here so the generator's event-type
    // counters land in the same registry as the executor's.
    if opts.telemetry.is_none() && opts.telemetry_out.is_some() {
        opts.telemetry = Some(flowkv_common::telemetry::Telemetry::new_shared());
    }
    let factory = match vfs {
        Some(vfs) => backend.build(FactoryOptions::new().vfs(vfs)),
        None => backend.build(FactoryOptions::new()),
    };
    let outcome = run_job(
        &job,
        EventGenerator::new(gen_cfg).tuples_with_telemetry(opts.telemetry.clone()),
        factory,
        &opts,
    );
    match outcome {
        Ok(result) => CellOutcome::Ok(Box::new(result)),
        Err(JobError::Timeout) => CellOutcome::Timeout,
        Err(JobError::Store(e)) if e.is_out_of_memory() => CellOutcome::OutOfMemory,
        Err(e) => CellOutcome::Failed(e.to_string()),
    }
}

/// Prints one TSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Prints a TSV header row.
pub fn header(cells: &[&str]) {
    println!("{}", cells.join("\t"));
}

/// Formats nanoseconds as seconds with millisecond precision.
pub fn secs(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_sized() {
        let cfg = workload(1_000, 1);
        assert_eq!(cfg.num_events, 1_000);
        assert_eq!(cfg.events_per_second, EVENTS_PER_SECOND);
    }

    #[test]
    fn backends_are_the_papers_four() {
        let names: Vec<&str> = bench_backends(1 << 20).iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["inmemory", "flowkv", "lsm", "hashkv"]);
    }

    #[test]
    fn small_cell_runs_end_to_end() {
        let outcome = run_cell(
            QueryId::Q12,
            &BackendChoice::FlowKv(FlowKvConfig::small_for_tests()),
            workload(5_000, 3),
            QueryParams::new(1_000).with_parallelism(2),
            Duration::from_secs(30),
            |_| {},
        );
        let result = match &outcome {
            CellOutcome::Ok(r) => r,
            _ => panic!("cell failed: {}", outcome.throughput_cell()),
        };
        assert_eq!(result.input_count, 5_000);
        assert!(result.output_count > 0);
    }
}
