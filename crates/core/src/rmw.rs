//! The Read-Modify-Write store (paper §4.3).
//!
//! Incremental aggregates are read and rewritten on *every* tuple
//! arrival, so read-time prediction buys nothing; what matters is O(1)
//! point access without synchronization. The RMW store keeps a hash
//! write buffer of dirty aggregates in front of an in-memory hash index
//! over an append-only value log — structurally a hash KV store, minus
//! the concurrency machinery the paper shows Faster wastes cycles on for
//! single-threaded stream workers. Compaction rewrites the log when
//! space amplification exceeds the MSA, like the AUR store.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::codec::{put_len_prefixed, Decoder};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::logfile::{LogReader, LogWriter, RandomAccessLog};
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::registry::ViewValue;
use flowkv_common::types::WindowId;
use flowkv_common::vfs::{StdVfs, Vfs};

/// Tuning knobs of one RMW store instance.
#[derive(Clone, Debug)]
pub struct RmwConfig {
    /// Flush the write buffer at this size.
    pub write_buffer_bytes: usize,
    /// Compact when `total / (total − dead)` exceeds this factor.
    pub max_space_amplification: f64,
}

impl Default for RmwConfig {
    fn default() -> Self {
        RmwConfig {
            write_buffer_bytes: 4 << 20,
            max_space_amplification: 1.5,
        }
    }
}

fn log_file_name(generation: u64) -> String {
    format!("agg_{generation}.rmw")
}

/// Builds the composite key `window ‖ user-key`.
fn composite_key(key: &[u8], window: WindowId) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + key.len());
    out.extend_from_slice(&window.to_ordered_bytes());
    out.extend_from_slice(key);
    out
}

/// Splits a composite key back into `(user-key, window)`.
fn split_composite(composite: &[u8]) -> Result<(Vec<u8>, WindowId)> {
    if composite.len() < 16 {
        return Err(StoreError::invalid_state("rmw composite key too short"));
    }
    let window = WindowId::from_ordered_bytes(&composite[..16])?;
    Ok((composite[16..].to_vec(), window))
}

/// The read-modify-write store for one partition.
pub struct RmwStore {
    dir: PathBuf,
    cfg: RmwConfig,
    /// Dirty aggregates, newest state of each `(window, key)`.
    buffer: HashMap<Vec<u8>, Vec<u8>>,
    buffer_bytes: usize,
    /// On-disk location of each flushed aggregate.
    index: HashMap<Vec<u8>, (u64, u64)>,
    writer: Option<LogWriter>,
    /// Open read handle over the current value log (invalidated when the
    /// generation changes).
    reader: Option<RandomAccessLog>,
    generation: u64,
    total: u64,
    dead: u64,
    /// Reusable scratch for encoding flush records, so steady-state
    /// flushing allocates no per-record `Vec<u8>`s.
    encode_buf: Vec<u8>,
    metrics: Arc<StoreMetrics>,
    vfs: Arc<dyn Vfs>,
}

impl RmwStore {
    /// Opens a store rooted at `dir`, recovering any existing generation.
    pub fn open(dir: &Path, cfg: RmwConfig, metrics: Arc<StoreMetrics>) -> Result<Self> {
        Self::open_with_vfs(dir, cfg, metrics, StdVfs::shared())
    }

    /// Opens a store rooted at `dir`, performing all file IO through `vfs`.
    pub fn open_with_vfs(
        dir: &Path,
        cfg: RmwConfig,
        metrics: Arc<StoreMetrics>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        vfs.create_dir_all(dir)
            .map_err(|e| StoreError::io_at("rmw dir", dir, e))?;
        let mut store = RmwStore {
            dir: dir.to_path_buf(),
            cfg,
            buffer: HashMap::new(),
            buffer_bytes: 0,
            index: HashMap::new(),
            writer: None,
            reader: None,
            generation: 0,
            total: 0,
            dead: 0,
            encode_buf: Vec::new(),
            metrics,
            vfs,
        };
        if let Some(generation) = store.find_generation()? {
            store.generation = generation;
            store.rebuild_from_log()?;
        }
        Ok(store)
    }

    /// Fetches and removes the aggregate of `(key, window)` (paper
    /// Listing 1, `Get(K, W)`).
    pub fn take(&mut self, key: &[u8], window: WindowId) -> Result<Option<Vec<u8>>> {
        let _t = self.metrics.timer(OpCategory::Read);
        let composite = composite_key(key, window);
        let buffered = self.buffer.remove(&composite);
        if let Some(v) = &buffered {
            self.buffer_bytes = self
                .buffer_bytes
                .saturating_sub(composite.len() + v.len() + 48);
        }
        let disk = match self.index.remove(&composite) {
            Some((offset, len)) => {
                self.dead += len;
                if buffered.is_some() {
                    // The buffered value is newer; the disk copy just
                    // became garbage.
                    None
                } else {
                    let value = self.read_at(offset, len)?;
                    Some(value)
                }
            }
            None => None,
        };
        let result = buffered.or(disk);
        if result.is_some() {
            self.metrics.add_records_read(1);
        }
        drop(_t);
        self.maybe_compact()?;
        Ok(result)
    }

    /// Stores the updated aggregate (paper Listing 1, `Put(K, W, A)`).
    pub fn put(&mut self, key: &[u8], window: WindowId, aggregate: &[u8]) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Write);
        let composite = composite_key(key, window);
        self.buffer_bytes += composite.len() + aggregate.len() + 48;
        if let Some(old) = self.buffer.insert(composite.clone(), aggregate.to_vec()) {
            self.buffer_bytes = self
                .buffer_bytes
                .saturating_sub(composite.len() + old.len() + 48);
        }
        // A flushed copy, if any, is superseded the moment the dirty
        // value exists; it dies at the next flush or take.
        self.metrics.add_records_written(1);
        if self.buffer_bytes >= self.cfg.write_buffer_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes dirty aggregates to the value log.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let _t = self.metrics.timer(OpCategory::Write);
        self.ensure_writer()?;
        let dirty = std::mem::take(&mut self.buffer);
        self.buffer_bytes = 0;
        for (composite, aggregate) in dirty {
            self.encode_buf.clear();
            put_len_prefixed(&mut self.encode_buf, &composite);
            put_len_prefixed(&mut self.encode_buf, &aggregate);
            let writer = self.writer.as_mut().expect("ensured above");
            let loc = writer.append(&self.encode_buf)?;
            self.metrics.add_bytes_written(loc.disk_len());
            self.total += loc.disk_len();
            if let Some((_, old_len)) = self.index.insert(composite, (loc.offset, loc.disk_len())) {
                self.dead += old_len;
            }
        }
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        self.metrics.add_flush();
        drop(_t);
        self.maybe_compact()
    }

    /// Copies every live aggregate into `out` for the queryable-state
    /// registry (`flowkv_common::registry`).
    ///
    /// Flushed aggregates are recovered with one sequential pass over
    /// the value log, keeping only records the index still points at and
    /// that no dirty buffer entry shadows; buffered aggregates are then
    /// copied on top. The store's logical state is untouched — at most
    /// the log writer's userspace buffer is flushed so the pass sees
    /// every indexed record.
    pub fn collect_view(
        &mut self,
        out: &mut BTreeMap<(Vec<u8>, WindowId), ViewValue>,
    ) -> Result<()> {
        if !self.index.is_empty() {
            if let Some(w) = self.writer.as_mut() {
                w.flush()?;
            }
            let path = self.dir.join(log_file_name(self.generation));
            if self.vfs.exists(&path) {
                let mut reader = LogReader::open_in(&self.vfs, &path)?;
                while let Some((loc, payload)) = reader.next_record()? {
                    let mut dec = Decoder::new(&payload);
                    let composite = dec.get_len_prefixed()?;
                    let live = self
                        .index
                        .get(composite)
                        .is_some_and(|&(offset, _)| offset == loc.offset);
                    if !live || self.buffer.contains_key(composite) {
                        continue;
                    }
                    let (key, window) = split_composite(composite)?;
                    let aggregate = dec.get_len_prefixed()?.to_vec();
                    out.insert((key, window), ViewValue::Aggregate(aggregate));
                }
            }
        }
        for (composite, aggregate) in &self.buffer {
            let (key, window) = split_composite(composite)?;
            out.insert((key, window), ViewValue::Aggregate(aggregate.clone()));
        }
        Ok(())
    }

    /// Approximate bytes of state held in memory.
    pub fn memory_bytes(&self) -> usize {
        self.buffer_bytes + self.index.len() * 64
    }

    /// Total bytes in the value log (live + dead), for tests.
    pub fn log_bytes(&self) -> u64 {
        self.total
    }

    /// Number of live aggregates (buffered or flushed).
    pub fn len(&self) -> usize {
        // Buffered entries may shadow flushed ones; count distinct keys.
        let shadowed = self
            .buffer
            .keys()
            .filter(|k| self.index.contains_key(*k))
            .count();
        self.buffer.len() + self.index.len() - shadowed
    }

    /// Returns `true` when no aggregates are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes a self-contained snapshot into `dst`.
    pub fn checkpoint(&mut self, dst: &Path) -> Result<()> {
        self.flush()?;
        if self.dead > 0 {
            self.compact()?;
        }
        if let Some(w) = self.writer.as_mut() {
            w.sync()?;
        }
        self.vfs
            .create_dir_all(dst)
            .map_err(|e| StoreError::io_at("rmw checkpoint dir", dst, e))?;
        let src = self.dir.join(log_file_name(self.generation));
        if self.vfs.exists(&src) {
            self.vfs
                .copy(&src, &dst.join("agg.rmw"))
                .map_err(|e| StoreError::io_at("rmw checkpoint copy", &src, e))?;
        }
        Ok(())
    }

    /// Replaces the store contents with the snapshot in `src`.
    pub fn restore(&mut self, src: &Path) -> Result<()> {
        self.close()?;
        self.vfs
            .create_dir_all(&self.dir)
            .map_err(|e| StoreError::io_at("rmw dir", &self.dir, e))?;
        self.generation = 0;
        let from = src.join("agg.rmw");
        if self.vfs.exists(&from) {
            self.vfs
                .copy(&from, &self.dir.join(log_file_name(0)))
                .map_err(|e| StoreError::io_at("rmw restore copy", &from, e))?;
            self.rebuild_from_log()?;
        }
        Ok(())
    }

    /// Deletes every file of the store and clears its memory.
    pub fn close(&mut self) -> Result<()> {
        self.buffer.clear();
        self.buffer_bytes = 0;
        self.index.clear();
        self.writer = None;
        self.reader = None;
        let _ = self
            .vfs
            .remove_file(&self.dir.join(log_file_name(self.generation)));
        self.total = 0;
        self.dead = 0;
        Ok(())
    }

    fn read_at(&mut self, offset: u64, len: u64) -> Result<Vec<u8>> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        if self.reader.is_none() {
            let path = self.dir.join(log_file_name(self.generation));
            self.reader = Some(RandomAccessLog::open_in(&self.vfs, &path)?);
        }
        let log = self.reader.as_mut().expect("opened above");
        let payload = log.read_record_at(offset)?;
        self.metrics.add_bytes_read(len);
        let mut dec = Decoder::new(&payload);
        let _composite = dec.get_len_prefixed()?;
        Ok(dec.get_len_prefixed()?.to_vec())
    }

    fn ensure_writer(&mut self) -> Result<()> {
        if self.writer.is_none() {
            let path = self.dir.join(log_file_name(self.generation));
            self.writer = Some(if self.vfs.exists(&path) {
                LogWriter::open_append_in(&self.vfs, &path)?
            } else {
                LogWriter::create_in(&self.vfs, &path)?
            });
        }
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<()> {
        if self.dead == 0 || self.total < self.cfg.write_buffer_bytes as u64 {
            return Ok(());
        }
        let live = self.total - self.dead;
        let amp = if live == 0 {
            f64::INFINITY
        } else {
            self.total as f64 / live as f64
        };
        if amp <= self.cfg.max_space_amplification {
            return Ok(());
        }
        self.compact()
    }

    /// Rewrites the value log keeping only live aggregates.
    fn compact(&mut self) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Compaction);
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        self.writer = None;
        let old_gen = self.generation;
        let new_gen = old_gen + 1;
        let old_path = self.dir.join(log_file_name(old_gen));
        let new_path = self.dir.join(log_file_name(new_gen));
        let mut new_writer = LogWriter::create_in(&self.vfs, &new_path)?;
        let mut new_index = HashMap::with_capacity(self.index.len());
        let mut moved = 0u64;
        if self.vfs.exists(&old_path) {
            let mut old = RandomAccessLog::open_in(&self.vfs, &old_path)?;
            // Deterministic relocation order keeps the new log sequential.
            let mut live: Vec<(Vec<u8>, (u64, u64))> = self.index.drain().collect();
            live.sort_by_key(|(_, (offset, _))| *offset);
            for (composite, (offset, _len)) in live {
                let payload = old.read_record_at(offset)?;
                let loc = new_writer.append(&payload)?;
                moved += loc.disk_len();
                new_index.insert(composite, (loc.offset, loc.disk_len()));
            }
        }
        new_writer.sync()?;
        let _ = self.vfs.remove_file(&old_path);
        self.generation = new_gen;
        self.index = new_index;
        self.writer = Some(new_writer);
        self.reader = None;
        self.metrics.add_bytes_read(moved);
        self.metrics.add_bytes_written(moved);
        self.metrics.add_compaction();
        self.total = moved;
        self.dead = 0;
        Ok(())
    }

    fn find_generation(&self) -> Result<Option<u64>> {
        let mut best: Option<u64> = None;
        let names = self
            .vfs
            .read_dir_names(&self.dir)
            .map_err(|e| StoreError::io_at("rmw scan", &self.dir, e))?;
        for name in names {
            if let Some(generation) = name
                .strip_prefix("agg_")
                .and_then(|s| s.strip_suffix(".rmw"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                best = Some(best.map_or(generation, |b: u64| b.max(generation)));
            }
        }
        Ok(best)
    }

    /// Rebuilds the index by replaying the value log (last write wins).
    ///
    /// A torn record at the tail (crash mid-flush) is truncated away; the
    /// aggregates it held were not durably flushed and are recovered by
    /// the engine's source replay, as with every store here (paper §8).
    fn rebuild_from_log(&mut self) -> Result<()> {
        self.index.clear();
        self.total = 0;
        self.dead = 0;
        let path = self.dir.join(log_file_name(self.generation));
        if !self.vfs.exists(&path) {
            return Ok(());
        }
        // Truncate any torn tail left by a crash mid-flush.
        LogWriter::open_append_in(&self.vfs, &path)?;
        let mut reader = LogReader::open_in(&self.vfs, &path)?;
        while let Some((loc, payload)) = reader.next_record()? {
            let mut dec = Decoder::new(&payload);
            let composite = dec.get_len_prefixed()?.to_vec();
            self.total += loc.disk_len();
            if let Some((_, old_len)) = self.index.insert(composite, (loc.offset, loc.disk_len())) {
                self.dead += old_len;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn cfg_small() -> RmwConfig {
        RmwConfig {
            write_buffer_bytes: 1 << 10,
            max_space_amplification: 1.5,
        }
    }

    fn store(dir: &Path) -> RmwStore {
        RmwStore::open(dir, cfg_small(), StoreMetrics::new_shared()).unwrap()
    }

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    #[test]
    fn take_put_cycle() {
        let dir = ScratchDir::new("rmw-cycle").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        assert_eq!(s.take(b"k", win).unwrap(), None);
        // A counter incremented ten times through take/put cycles.
        for _ in 0..10 {
            let n = s
                .take(b"k", win)
                .unwrap()
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .unwrap_or(0);
            s.put(b"k", win, &(n + 1).to_le_bytes()).unwrap();
        }
        assert_eq!(
            s.take(b"k", win).unwrap(),
            Some(10u64.to_le_bytes().to_vec())
        );
        assert_eq!(s.take(b"k", win).unwrap(), None);
    }

    #[test]
    fn windows_are_independent() {
        let dir = ScratchDir::new("rmw-windows").unwrap();
        let mut s = store(dir.path());
        s.put(b"k", w(0, 100), b"a").unwrap();
        s.put(b"k", w(100, 200), b"b").unwrap();
        assert_eq!(s.take(b"k", w(0, 100)).unwrap(), Some(b"a".to_vec()));
        assert_eq!(s.take(b"k", w(100, 200)).unwrap(), Some(b"b".to_vec()));
    }

    #[test]
    fn spills_to_disk_and_reads_back() {
        let dir = ScratchDir::new("rmw-spill").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        for i in 0..200u32 {
            s.put(format!("key-{i}").as_bytes(), win, &[7u8; 32])
                .unwrap();
        }
        assert!(s.metrics.snapshot().flushes > 0, "buffer never flushed");
        for i in (0..200u32).step_by(13) {
            assert_eq!(
                s.take(format!("key-{i}").as_bytes(), win).unwrap(),
                Some(vec![7u8; 32])
            );
        }
    }

    #[test]
    fn buffered_value_shadows_flushed() {
        let dir = ScratchDir::new("rmw-shadow").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        s.put(b"k", win, b"old").unwrap();
        s.flush().unwrap();
        s.put(b"k", win, b"new").unwrap();
        assert_eq!(s.take(b"k", win).unwrap(), Some(b"new".to_vec()));
        assert_eq!(s.take(b"k", win).unwrap(), None);
    }

    #[test]
    fn compaction_bounds_space_amplification() {
        let dir = ScratchDir::new("rmw-compact").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        for round in 0..100u32 {
            for key in 0..20u32 {
                s.put(format!("key-{key}").as_bytes(), win, &round.to_le_bytes())
                    .unwrap();
            }
            s.flush().unwrap();
        }
        assert!(s.metrics.snapshot().compactions > 0, "no compaction ran");
        for key in 0..20u32 {
            assert_eq!(
                s.take(format!("key-{key}").as_bytes(), win).unwrap(),
                Some(99u32.to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let dir = ScratchDir::new("rmw-ckpt").unwrap();
        let ckpt = ScratchDir::new("rmw-ckpt-dst").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        s.put(b"a", win, b"1").unwrap();
        s.put(b"gone", win, b"x").unwrap();
        s.flush().unwrap();
        s.take(b"gone", win).unwrap();
        s.checkpoint(ckpt.path()).unwrap();
        s.put(b"b", win, b"2").unwrap();
        s.restore(ckpt.path()).unwrap();
        assert_eq!(s.take(b"a", win).unwrap(), Some(b"1".to_vec()));
        assert_eq!(s.take(b"gone", win).unwrap(), None);
        assert_eq!(s.take(b"b", win).unwrap(), None);
    }

    #[test]
    fn view_sees_buffered_and_flushed_without_consuming() {
        let dir = ScratchDir::new("rmw-view").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        s.put(b"flushed", win, b"old").unwrap();
        s.put(b"shadowed", win, b"stale").unwrap();
        s.flush().unwrap();
        s.put(b"shadowed", win, b"fresh").unwrap();
        s.put(b"dirty", win, b"hot").unwrap();

        let mut view = BTreeMap::new();
        s.collect_view(&mut view).unwrap();
        assert_eq!(view.len(), 3);
        assert_eq!(
            view.get(&(b"flushed".to_vec(), win)),
            Some(&ViewValue::Aggregate(b"old".to_vec()))
        );
        assert_eq!(
            view.get(&(b"shadowed".to_vec(), win)),
            Some(&ViewValue::Aggregate(b"fresh".to_vec()))
        );
        assert_eq!(
            view.get(&(b"dirty".to_vec(), win)),
            Some(&ViewValue::Aggregate(b"hot".to_vec()))
        );

        // Building the view consumed nothing.
        assert_eq!(s.take(b"flushed", win).unwrap(), Some(b"old".to_vec()));
        assert_eq!(s.take(b"shadowed", win).unwrap(), Some(b"fresh".to_vec()));
        assert_eq!(s.take(b"dirty", win).unwrap(), Some(b"hot".to_vec()));
    }

    #[test]
    fn reopen_recovers_with_last_write_wins() {
        let dir = ScratchDir::new("rmw-reopen").unwrap();
        let win = w(0, 100);
        {
            let mut s = store(dir.path());
            s.put(b"k", win, b"v1").unwrap();
            s.flush().unwrap();
            s.put(b"k", win, b"v2").unwrap();
            s.flush().unwrap();
            if let Some(writer) = s.writer.as_mut() {
                writer.sync().unwrap();
            }
        }
        let mut s = store(dir.path());
        assert_eq!(s.take(b"k", win).unwrap(), Some(b"v2".to_vec()));
    }
}
