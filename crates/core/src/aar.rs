//! The Append and Aligned Read store (paper §4.1).
//!
//! Windows of *all* keys trigger together under fixed and sliding window
//! functions, so per-key access is never needed. The AAR store therefore
//! organizes data coarsely by window boundary:
//!
//! - in memory, the write buffer hashes on `(start, end)` — tuples of
//!   different keys land in the same bucket;
//! - on disk, every window boundary owns its own log file, appended to at
//!   each flush;
//! - a triggered window is drained by sequential reads of exactly one
//!   file (*gradual state loading*: each call returns one bounded chunk);
//! - once drained, the file is deleted — no compaction ever runs, the
//!   headline CPU saving of this store over an LSM baseline.

use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::backend::WindowChunk;
use flowkv_common::codec::{put_len_prefixed, put_varint_u64, Decoder};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::ioring::{Completion, IoOutcome, IoPolicy, IoRing};
use flowkv_common::logfile::{LogReader, LogWriter};
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::registry::ViewValue;
use flowkv_common::telemetry::Telemetry;
use flowkv_common::types::{Timestamp, WindowId};
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::probe::{ring_err, PrefetchProbe};

/// File name of the log holding one window's state.
fn window_file_name(window: WindowId) -> String {
    format!("w_{}_{}.aar", window.start, window.end)
}

/// Name of the checkpoint manifest listing on-disk windows.
const MANIFEST_NAME: &str = "AAR_WINDOWS";

/// Maximum per-window log writers held open at once.
///
/// Long sliding windows can keep thousands of window boundaries live;
/// holding a file descriptor per boundary would exhaust the process
/// limit, so the least-recently-flushed writer is closed (its file is
/// reopened in append mode on the next flush).
const MAX_OPEN_WRITERS: usize = 64;

/// A buffered `(key, value)` pair.
type Pair = (Vec<u8>, Vec<u8>);

/// In-flight drain of one triggered window.
struct Drain {
    /// Pairs prefetched from the file's snapshot prefix, served first
    /// (they are the oldest data, exactly what a fresh reader would
    /// yield before `reader`'s continuation offset).
    pre: std::vec::IntoIter<Pair>,
    reader: Option<LogReader>,
    /// Buffered pairs that never reached disk, served after the file.
    mem: std::vec::IntoIter<Pair>,
}

/// A window's file prefix loaded by the background ring, awaiting its
/// aligned trigger.
struct PrefetchedWindow {
    pairs: Vec<Pair>,
    /// File offset the background scan stopped at; the drain's
    /// continuation reader starts here to pick up post-snapshot flushes.
    end_offset: u64,
    /// True when the scan ended at a torn record before `end_offset`: the
    /// synchronous path would stop serving the file there too, so the
    /// drain must not open a continuation reader.
    terminal: bool,
    bytes: u64,
}

/// Payload a background window read returns through the ring.
struct AarAsyncRead {
    window: WindowId,
    epoch: u64,
    end_offset: u64,
    terminal: bool,
    pairs: Vec<Pair>,
    bytes: u64,
}

/// The append-and-aligned-read store for one partition.
pub struct AarStore {
    dir: PathBuf,
    write_buffer_bytes: usize,
    chunk_entries: usize,
    buffer: HashMap<WindowId, Vec<Pair>>,
    buffer_bytes: usize,
    writers: HashMap<WindowId, LogWriter>,
    /// Flush recency per open writer (monotone counter), for LRU closing.
    writer_recency: HashMap<WindowId, u64>,
    flush_clock: u64,
    on_disk: HashSet<WindowId>,
    drains: HashMap<WindowId, Drain>,
    /// Reusable scratch for encoding flush chunks, so steady-state
    /// flushing allocates no per-record `Vec<u8>`s.
    encode_buf: Vec<u8>,
    metrics: Arc<StoreMetrics>,
    vfs: Arc<dyn Vfs>,
    /// Background I/O ring shared by this worker's store instances.
    ring: Option<Arc<IoRing>>,
    ring_tag: u64,
    /// How far past current stream time (ms of event time) window ends
    /// may lie for their file to be prefetched.
    horizon: i64,
    /// Soft cap on prefetched + in-flight bytes for this instance.
    budget_bytes: u64,
    /// Bumped by close/restore so stale completions can't install.
    epoch: u64,
    prefetched: HashMap<WindowId, PrefetchedWindow>,
    /// Submission id → (window, estimated bytes).
    inflight: HashMap<u64, (WindowId, u64)>,
    inflight_windows: HashSet<WindowId>,
    inflight_bytes: u64,
    prefetch_probe: Option<PrefetchProbe>,
}

impl AarStore {
    /// Opens a store rooted at `dir` on the real filesystem.
    pub fn open(
        dir: &Path,
        write_buffer_bytes: usize,
        chunk_entries: usize,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        Self::open_with_vfs(
            dir,
            write_buffer_bytes,
            chunk_entries,
            metrics,
            StdVfs::shared(),
        )
    }

    /// Opens a store rooted at `dir`, performing all file IO through `vfs`.
    pub fn open_with_vfs(
        dir: &Path,
        write_buffer_bytes: usize,
        chunk_entries: usize,
        metrics: Arc<StoreMetrics>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        vfs.create_dir_all(dir)
            .map_err(|e| StoreError::io_at("aar dir", dir, e))?;
        let mut store = AarStore {
            dir: dir.to_path_buf(),
            write_buffer_bytes: write_buffer_bytes.max(1024),
            chunk_entries: chunk_entries.max(1),
            buffer: HashMap::new(),
            buffer_bytes: 0,
            writers: HashMap::new(),
            writer_recency: HashMap::new(),
            flush_clock: 0,
            on_disk: HashSet::new(),
            drains: HashMap::new(),
            encode_buf: Vec::new(),
            metrics,
            vfs,
            ring: None,
            ring_tag: 0,
            horizon: 500,
            budget_bytes: 8 << 20,
            epoch: 0,
            prefetched: HashMap::new(),
            inflight: HashMap::new(),
            inflight_windows: HashSet::new(),
            inflight_bytes: 0,
            prefetch_probe: None,
        };
        store.scan_existing_files()?;
        Ok(store)
    }

    /// Attaches the worker's background I/O ring; `tag` routes this
    /// instance's completions, `policy` sets horizon and budget.
    pub fn with_ring(mut self, ring: Arc<IoRing>, tag: u64, policy: &IoPolicy) -> Self {
        self.ring = Some(ring);
        self.ring_tag = tag;
        self.horizon = policy.prefetch_horizon;
        self.budget_bytes = policy.prefetch_budget_bytes;
        self
    }

    /// Wires prefetch-accuracy telemetry, labelled `{store=tag}`.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>, tag: &str) -> Self {
        self.prefetch_probe = Some(PrefetchProbe::new(&telemetry, tag));
        self
    }

    /// Appends `(key, value)` to `window`'s bucket (paper Listing 1,
    /// `Append(K, V, W)`).
    pub fn append(&mut self, key: &[u8], window: WindowId, value: &[u8]) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Write);
        self.buffer_bytes += key.len() + value.len() + 48;
        self.buffer
            .entry(window)
            .or_default()
            .push((key.to_vec(), value.to_vec()));
        self.metrics.add_records_written(1);
        if self.buffer_bytes >= self.write_buffer_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Reads the next chunk of `window`'s state (paper Listing 1,
    /// `GetWindow(W)`), deleting the window once fully drained.
    pub fn get_window_chunk(&mut self, window: WindowId) -> Result<Option<WindowChunk>> {
        let _t = self.metrics.timer(OpCategory::Read);
        if !self.drains.contains_key(&window) {
            let mem = self.buffer.remove(&window).unwrap_or_default();
            // Unflushed buffered bytes of this window leave the buffer.
            self.buffer_bytes = self
                .buffer_bytes
                .saturating_sub(mem.iter().map(|(k, v)| k.len() + v.len() + 48).sum());
            let mut pre: Vec<Pair> = Vec::new();
            let reader = if self.on_disk.contains(&window) {
                // Make sure buffered flushes for this window are visible.
                if let Some(w) = self.writers.get_mut(&window) {
                    w.flush()?;
                }
                match self.prefetched.remove(&window) {
                    Some(pw) => {
                        // The snapshot prefix was loaded in the background;
                        // a continuation reader covers post-snapshot
                        // flushes (unless the prefix ended at a torn
                        // record, where the sync path would stop too).
                        if let Some(p) = &self.prefetch_probe {
                            p.hits.inc();
                        }
                        pre = pw.pairs;
                        if pw.terminal {
                            None
                        } else {
                            Some(LogReader::open_at_in(
                                &self.vfs,
                                self.dir.join(window_file_name(window)),
                                pw.end_offset,
                            )?)
                        }
                    }
                    None => {
                        let late = self.inflight_windows.contains(&window);
                        if late {
                            // The window fired before its background read
                            // landed; fall back to a synchronous read.
                            if let Some(p) = &self.prefetch_probe {
                                p.late.inc();
                            }
                        }
                        let stall_t0 = (late && flowkv_common::trace::current().is_some())
                            .then(std::time::Instant::now);
                        let reader =
                            LogReader::open_in(&self.vfs, self.dir.join(window_file_name(window)))?;
                        if let Some(t0) = stall_t0 {
                            flowkv_common::trace::instant_here(
                                "prefetch_stall",
                                "prefetch",
                                &[("stall", t0.elapsed().as_nanos() as i64)],
                            );
                        }
                        Some(reader)
                    }
                }
            } else {
                None
            };
            if mem.is_empty() && reader.is_none() && pre.is_empty() {
                return Ok(None);
            }
            self.drains.insert(
                window,
                Drain {
                    pre: pre.into_iter(),
                    reader,
                    mem: mem.into_iter(),
                },
            );
        }
        let drain = self.drains.get_mut(&window).expect("inserted above");
        let mut pairs: Vec<Pair> = Vec::new();
        // Serve the prefetched file prefix, then the file (older data
        // first), then the memory remainder.
        while pairs.len() < self.chunk_entries {
            if let Some(pair) = drain.pre.next() {
                pairs.push(pair);
                continue;
            }
            if let Some(reader) = drain.reader.as_mut() {
                match reader.next_record() {
                    Ok(Some((loc, payload))) => {
                        self.metrics.add_bytes_read(loc.disk_len());
                        decode_batch(&payload, &mut pairs)?;
                        continue;
                    }
                    Ok(None) => drain.reader = None,
                    // A torn record (crash mid-flush) ends the file: the
                    // intact prefix is served, the tail is unrecoverable
                    // framing either way.
                    Err(e) if e.is_corruption() => drain.reader = None,
                    Err(e) => return Err(e),
                }
            }
            match drain.mem.next() {
                Some(pair) => pairs.push(pair),
                None => break,
            }
        }
        if pairs.is_empty() {
            // Fully drained: clean up the window's file and bookkeeping.
            self.drains.remove(&window);
            self.writers.remove(&window);
            self.writer_recency.remove(&window);
            if self.on_disk.remove(&window) {
                let _ = self
                    .vfs
                    .remove_file(&self.dir.join(window_file_name(window)));
            }
            return Ok(None);
        }
        self.metrics.add_records_read(pairs.len() as u64);
        Ok(Some(group_by_key(pairs)))
    }

    /// Flushes every buffered bucket to its per-window log file.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let _t = self.metrics.timer(OpCategory::Write);
        let buckets = std::mem::take(&mut self.buffer);
        self.buffer_bytes = 0;
        for (window, pairs) in buckets {
            let writer = match self.writers.entry(window) {
                Entry::Occupied(w) => w.into_mut(),
                Entry::Vacant(slot) => {
                    let path = self.dir.join(window_file_name(window));
                    let writer = if self.vfs.exists(&path) {
                        LogWriter::open_append_in(&self.vfs, &path)?
                    } else {
                        LogWriter::create_in(&self.vfs, &path)?
                    };
                    slot.insert(writer)
                }
            };
            // Records are capped at `chunk_entries` pairs so gradual
            // loading later reads bounded chunks.
            for batch in pairs.chunks(self.chunk_entries) {
                encode_batch_into(&mut self.encode_buf, batch);
                let loc = writer.append(&self.encode_buf)?;
                self.metrics.add_bytes_written(loc.disk_len());
            }
            writer.flush()?;
            self.on_disk.insert(window);
            self.flush_clock += 1;
            self.writer_recency.insert(window, self.flush_clock);
            self.enforce_writer_cap();
        }
        self.metrics.add_flush();
        Ok(())
    }

    /// Drives the background prefetcher: drains finished ring reads,
    /// then schedules file reads for every on-disk window whose aligned
    /// trigger (its end boundary) falls within the horizon of
    /// `stream_time`.
    pub fn advance_prefetch(&mut self, stream_time: Timestamp) -> Result<()> {
        if self.ring.is_none() {
            return Ok(());
        }
        self.drain_ring()?;
        self.submit_prefetch(stream_time)
    }

    /// Drains finished completions for this instance, re-raising panics
    /// captured on pool threads (injected crash faults) here on the
    /// worker thread.
    fn drain_ring(&mut self) -> Result<()> {
        let Some(ring) = self.ring.clone() else {
            return Ok(());
        };
        for completion in ring.drain_tag(self.ring_tag) {
            self.settle(completion)?;
        }
        Ok(())
    }

    /// Retires one completion: validates the window is still exactly as
    /// anticipated (same epoch, still on disk, not mid-drain, not
    /// already prefetched) and installs its file prefix.
    fn settle(&mut self, completion: Completion) -> Result<()> {
        if let Some((window, est)) = self.inflight.remove(&completion.id) {
            self.inflight_windows.remove(&window);
            self.inflight_bytes = self.inflight_bytes.saturating_sub(est);
        }
        match completion.into_result() {
            Ok(payload) => {
                let read = payload
                    .downcast::<AarAsyncRead>()
                    .map_err(|_| StoreError::invalid_state("aar ring returned foreign payload"))?;
                if read.epoch == self.epoch
                    && self.on_disk.contains(&read.window)
                    && !self.drains.contains_key(&read.window)
                    && !self.prefetched.contains_key(&read.window)
                {
                    self.metrics.add_bytes_read(read.bytes);
                    self.prefetched.insert(
                        read.window,
                        PrefetchedWindow {
                            pairs: read.pairs,
                            end_offset: read.end_offset,
                            terminal: read.terminal,
                            bytes: read.bytes,
                        },
                    );
                    flowkv_common::trace::instant_here(
                        "prefetch_install",
                        "prefetch",
                        &[("windows", 1)],
                    );
                } else {
                    self.waste(read.bytes);
                }
                Ok(())
            }
            // A failed background read just means the window drains
            // synchronously; reads racing a drain's file deletion lose
            // their file mid-scan routinely.
            Err(_) => Ok(()),
        }
    }

    fn waste(&mut self, bytes: u64) {
        if let Some(p) = &self.prefetch_probe {
            p.wasted_bytes.add(bytes);
        }
        flowkv_common::trace::instant_here(
            "prefetch_waste",
            "prefetch",
            &[("bytes", bytes as i64)],
        );
    }

    /// Submits one background file read per due window, bounded by the
    /// byte budget. Each job scans a consistent snapshot — the file up
    /// to its length at submission — and never touches store state.
    fn submit_prefetch(&mut self, stream_time: Timestamp) -> Result<()> {
        let Some(ring) = self.ring.clone() else {
            return Ok(());
        };
        let due = stream_time.saturating_add(self.horizon);
        let mut candidates: Vec<WindowId> = self
            .on_disk
            .iter()
            .copied()
            .filter(|w| {
                w.end <= due
                    && !self.prefetched.contains_key(w)
                    && !self.inflight_windows.contains(w)
                    && !self.drains.contains_key(w)
            })
            .collect();
        // Soonest-triggering windows claim the budget first.
        candidates.sort();
        let mut resident =
            self.prefetched.values().map(|p| p.bytes).sum::<u64>() + self.inflight_bytes;
        for window in candidates {
            // Push buffered log bytes out so the snapshot is complete,
            // and bound the scan at the current end of the file.
            if let Some(w) = self.writers.get_mut(&window) {
                w.flush()?;
            }
            let path = self.dir.join(window_file_name(window));
            let Ok(end_offset) = self.vfs.file_len(&path) else {
                continue;
            };
            if end_offset == 0 {
                continue;
            }
            if resident + end_offset > self.budget_bytes {
                break;
            }
            resident += end_offset;
            let epoch = self.epoch;
            let job = move |vfs: &Arc<dyn Vfs>| -> std::io::Result<Box<dyn Any + Send>> {
                let mut pairs: Vec<Pair> = Vec::new();
                let mut bytes = 0u64;
                let mut terminal = false;
                let mut reader = LogReader::open_in(vfs, &path).map_err(ring_err)?;
                loop {
                    // Stop *before* crossing the snapshot boundary: bytes
                    // past `end_offset` may belong to a flush the
                    // foreground is writing concurrently, and reading
                    // into a half-written record would look like a torn
                    // file and wrongly mark the prefix terminal.
                    if reader.offset() >= end_offset {
                        break;
                    }
                    match reader.next_record() {
                        Ok(Some((loc, payload))) => {
                            bytes += loc.disk_len();
                            decode_batch(&payload, &mut pairs).map_err(ring_err)?;
                        }
                        Ok(None) => break,
                        // A torn record below the snapshot boundary ends
                        // the file for the sync path too; mark the prefix
                        // terminal so the drain does not serve anything
                        // past it.
                        Err(e) if e.is_corruption() => {
                            terminal = true;
                            break;
                        }
                        Err(e) => return Err(ring_err(e)),
                    }
                }
                Ok(Box::new(AarAsyncRead {
                    window,
                    epoch,
                    end_offset,
                    terminal,
                    pairs,
                    bytes,
                }) as Box<dyn Any + Send>)
            };
            let id = ring.submit(self.ring_tag, Box::new(job));
            if let Some(p) = &self.prefetch_probe {
                p.issued.inc();
            }
            self.inflight.insert(id, (window, end_offset));
            self.inflight_windows.insert(window);
            self.inflight_bytes += end_offset;
        }
        Ok(())
    }

    /// Waits out every outstanding submission, re-raising captured
    /// panics and discarding payloads — callers are invalidating the
    /// store wholesale (close/restore).
    fn abandon_inflight(&mut self) {
        let Some(ring) = self.ring.clone() else {
            return;
        };
        let ids: Vec<u64> = self.inflight.keys().copied().collect();
        for id in ids {
            let completion = ring.wait(id);
            match completion.outcome {
                IoOutcome::Panicked(payload) => std::panic::resume_unwind(payload),
                IoOutcome::Ok(payload) => {
                    if let Ok(read) = payload.downcast::<AarAsyncRead>() {
                        let bytes = read.bytes;
                        self.waste(bytes);
                    }
                }
                IoOutcome::Err(_) => {}
            }
        }
        self.inflight.clear();
        self.inflight_windows.clear();
        self.inflight_bytes = 0;
    }

    /// Copies every live `(key, window)` value list into `out` for the
    /// queryable-state registry (`flowkv_common::registry`).
    ///
    /// Disk state is read per window file (flushing that window's writer
    /// first so the pass sees everything), then buffered pairs are
    /// appended in arrival order — the same old-then-new order a drain
    /// serves. Windows currently mid-drain are skipped: their state is
    /// already being consumed by the engine and is gone from the store's
    /// point of view. Nothing is removed.
    pub fn collect_view(
        &mut self,
        out: &mut BTreeMap<(Vec<u8>, WindowId), ViewValue>,
    ) -> Result<()> {
        let mut windows: Vec<WindowId> = self
            .on_disk
            .iter()
            .copied()
            .filter(|w| !self.drains.contains_key(w))
            .collect();
        windows.sort();
        for &window in &windows {
            if let Some(w) = self.writers.get_mut(&window) {
                w.flush()?;
            }
        }
        match self.ring.clone() {
            Some(ring) => {
                // Route the snapshot reads through the ring: one job per
                // window file, submitted together so the pool overlaps
                // them, then collected in window order.
                let ids: Vec<(WindowId, u64)> = windows
                    .iter()
                    .map(|&window| {
                        let path = self.dir.join(window_file_name(window));
                        let job =
                            move |vfs: &Arc<dyn Vfs>| -> std::io::Result<Box<dyn Any + Send>> {
                                Ok(Box::new(read_window_file(vfs, &path).map_err(ring_err)?)
                                    as Box<dyn Any + Send>)
                            };
                        (window, ring.submit(self.ring_tag, Box::new(job)))
                    })
                    .collect();
                for (window, id) in ids {
                    let payload = ring.wait(id).into_result().map_err(|e| {
                        StoreError::io_at(
                            "aar view read",
                            self.dir.join(window_file_name(window)),
                            e,
                        )
                    })?;
                    let pairs = *payload.downcast::<Vec<Pair>>().map_err(|_| {
                        StoreError::invalid_state("aar ring returned foreign payload")
                    })?;
                    for (key, value) in pairs {
                        push_view_value(out, key, window, value)?;
                    }
                }
            }
            None => {
                for window in windows {
                    let pairs =
                        read_window_file(&self.vfs, &self.dir.join(window_file_name(window)))?;
                    for (key, value) in pairs {
                        push_view_value(out, key, window, value)?;
                    }
                }
            }
        }
        for (&window, pairs) in &self.buffer {
            if self.drains.contains_key(&window) {
                continue;
            }
            for (key, value) in pairs {
                push_view_value(out, key.clone(), window, value.clone())?;
            }
        }
        Ok(())
    }

    /// Approximate bytes of state held in memory.
    pub fn memory_bytes(&self) -> usize {
        self.buffer_bytes
    }

    /// Number of per-window log writers currently open (bounded by an
    /// internal cap of 64 to avoid file-descriptor exhaustion).
    pub fn open_writers(&self) -> usize {
        self.writers.len()
    }

    /// Closes least-recently-flushed writers beyond the cap; their files
    /// reopen in append mode at the next flush touching them.
    fn enforce_writer_cap(&mut self) {
        while self.writers.len() > MAX_OPEN_WRITERS {
            let Some((&victim, _)) = self
                .writer_recency
                .iter()
                .filter(|(w, _)| self.writers.contains_key(w))
                .min_by_key(|(_, clock)| **clock)
            else {
                return;
            };
            self.writers.remove(&victim);
            self.writer_recency.remove(&victim);
        }
    }

    /// Writes a self-contained snapshot into `dst`.
    pub fn checkpoint(&mut self, dst: &Path) -> Result<()> {
        self.flush()?;
        self.vfs
            .create_dir_all(dst)
            .map_err(|e| StoreError::io_at("aar checkpoint dir", dst, e))?;
        let mut manifest = Vec::new();
        put_varint_u64(&mut manifest, self.on_disk.len() as u64);
        for window in &self.on_disk {
            window.encode_to(&mut manifest);
            let name = window_file_name(*window);
            self.vfs
                .copy(&self.dir.join(&name), &dst.join(&name))
                .map_err(|e| StoreError::io_at("aar checkpoint copy", dst.join(&name), e))?;
        }
        self.vfs
            .write(&dst.join(MANIFEST_NAME), &manifest)
            .map_err(|e| {
                StoreError::io_at("aar checkpoint manifest", dst.join(MANIFEST_NAME), e)
            })?;
        Ok(())
    }

    /// Replaces the store contents with the snapshot in `src`.
    pub fn restore(&mut self, src: &Path) -> Result<()> {
        self.close()?;
        self.vfs
            .create_dir_all(&self.dir)
            .map_err(|e| StoreError::io_at("aar dir", &self.dir, e))?;
        let manifest = self
            .vfs
            .read(&src.join(MANIFEST_NAME))
            .map_err(|e| StoreError::io_at("aar restore manifest", src.join(MANIFEST_NAME), e))?;
        let mut dec = Decoder::new(&manifest);
        let n = dec.get_varint_u64()? as usize;
        for _ in 0..n {
            let window = WindowId::decode_from(&mut dec)?;
            let name = window_file_name(window);
            self.vfs
                .copy(&src.join(&name), &self.dir.join(&name))
                .map_err(|e| StoreError::io_at("aar restore copy", src.join(&name), e))?;
            self.on_disk.insert(window);
        }
        Ok(())
    }

    /// Deletes every file of the store and clears its memory.
    pub fn close(&mut self) -> Result<()> {
        // Wait out background reads before deleting the files from under
        // them, and invalidate any completion drained later.
        self.abandon_inflight();
        self.epoch += 1;
        let stale: u64 = self.prefetched.values().map(|p| p.bytes).sum();
        self.waste(stale);
        self.prefetched.clear();
        self.buffer.clear();
        self.buffer_bytes = 0;
        self.writers.clear();
        self.writer_recency.clear();
        self.drains.clear();
        for window in std::mem::take(&mut self.on_disk) {
            let _ = self
                .vfs
                .remove_file(&self.dir.join(window_file_name(window)));
        }
        Ok(())
    }

    /// Rediscovers per-window files after a restart.
    fn scan_existing_files(&mut self) -> Result<()> {
        let names = self
            .vfs
            .read_dir_names(&self.dir)
            .map_err(|e| StoreError::io_at("aar scan", &self.dir, e))?;
        for name in names {
            if let Some(window) = parse_window_file_name(&name) {
                self.on_disk.insert(window);
            }
        }
        Ok(())
    }
}

/// Parses `w_<start>_<end>.aar` back into a window.
fn parse_window_file_name(name: &str) -> Option<WindowId> {
    let rest = name.strip_prefix("w_")?.strip_suffix(".aar")?;
    // `start` may itself be negative, so split from the right.
    let (start_s, end_s) = rest.rsplit_once('_')?;
    let start = start_s.parse().ok()?;
    let end = end_s.parse().ok()?;
    (start <= end).then(|| WindowId::new(start, end))
}

/// Encodes a flush batch into `buf` (cleared first): count then
/// length-prefixed `(key, value)` pairs. Taking the buffer from the
/// caller lets `flush` reuse one allocation across chunks and flushes.
fn encode_batch_into(buf: &mut Vec<u8>, pairs: &[Pair]) {
    buf.clear();
    put_varint_u64(buf, pairs.len() as u64);
    for (k, v) in pairs {
        put_len_prefixed(buf, k);
        put_len_prefixed(buf, v);
    }
}

/// Reads a whole per-window log file into pairs, a torn tail ending the
/// file as in `get_window_chunk`. Shared by the synchronous and
/// ring-offloaded snapshot paths.
fn read_window_file(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<Vec<Pair>> {
    let mut reader = LogReader::open_in(vfs, path)?;
    let mut pairs: Vec<Pair> = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some((_, payload))) => decode_batch(&payload, &mut pairs)?,
            Ok(None) => break,
            Err(e) if e.is_corruption() => break,
            Err(e) => return Err(e),
        }
    }
    Ok(pairs)
}

/// Decodes a flush batch, appending its pairs to `out`.
fn decode_batch(payload: &[u8], out: &mut Vec<Pair>) -> Result<()> {
    let mut dec = Decoder::new(payload);
    let n = dec.get_varint_u64()? as usize;
    out.reserve(n);
    for _ in 0..n {
        let k = dec.get_len_prefixed()?.to_vec();
        let v = dec.get_len_prefixed()?.to_vec();
        out.push((k, v));
    }
    Ok(())
}

/// Appends one value to the `(key, window)` list of a snapshot view.
///
/// Shared by the AAR and AUR view builders (both snapshot value lists).
pub(crate) fn push_view_value(
    out: &mut BTreeMap<(Vec<u8>, WindowId), ViewValue>,
    key: Vec<u8>,
    window: WindowId,
    value: Vec<u8>,
) -> Result<()> {
    match out
        .entry((key, window))
        .or_insert_with(|| ViewValue::Values(Vec::new()))
    {
        ViewValue::Values(values) => {
            values.push(value);
            Ok(())
        }
        ViewValue::Aggregate(_) => Err(StoreError::invalid_state(
            "view value list collided with an aggregate",
        )),
    }
}

/// Groups a chunk's pairs by key, preserving first-seen key order.
fn group_by_key(pairs: Vec<Pair>) -> WindowChunk {
    let mut order: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut chunk: WindowChunk = Vec::new();
    for (k, v) in pairs {
        match order.get(&k) {
            Some(&idx) => chunk[idx].1.push(v),
            None => {
                order.insert(k.clone(), chunk.len());
                chunk.push((k, vec![v]));
            }
        }
    }
    chunk
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn store(dir: &Path) -> AarStore {
        AarStore::open(dir, 1024, 4, StoreMetrics::new_shared()).unwrap()
    }

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    fn drain_all(s: &mut AarStore, window: WindowId) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
        let mut out = Vec::new();
        while let Some(chunk) = s.get_window_chunk(window).unwrap() {
            out.extend(chunk);
        }
        out
    }

    #[test]
    fn memory_only_roundtrip() {
        let dir = ScratchDir::new("aar-mem").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        s.append(b"a", win, b"1").unwrap();
        s.append(b"b", win, b"2").unwrap();
        s.append(b"a", win, b"3").unwrap();
        let state = drain_all(&mut s, win);
        let map: HashMap<Vec<u8>, Vec<Vec<u8>>> = state.into_iter().collect();
        assert_eq!(map[&b"a".to_vec()], vec![b"1".to_vec(), b"3".to_vec()]);
        assert_eq!(map[&b"b".to_vec()], vec![b"2".to_vec()]);
        // Fully drained: next read is None immediately.
        assert!(s.get_window_chunk(win).unwrap().is_none());
    }

    #[test]
    fn spills_to_per_window_files() {
        let dir = ScratchDir::new("aar-spill").unwrap();
        let mut s = store(dir.path());
        let w1 = w(0, 100);
        let w2 = w(100, 200);
        for i in 0..100u32 {
            s.append(format!("k{}", i % 7).as_bytes(), w1, &[1u8; 64])
                .unwrap();
            s.append(format!("k{}", i % 7).as_bytes(), w2, &[2u8; 64])
                .unwrap();
        }
        // The tiny 1 KiB buffer must have flushed repeatedly.
        assert!(s.metrics.snapshot().flushes > 1);
        assert!(dir.path().join(window_file_name(w1)).exists());
        assert!(dir.path().join(window_file_name(w2)).exists());

        let total1: usize = drain_all(&mut s, w1).iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total1, 100);
        // Draining w1 removed only w1's file.
        assert!(!dir.path().join(window_file_name(w1)).exists());
        assert!(dir.path().join(window_file_name(w2)).exists());
        let total2: usize = drain_all(&mut s, w2).iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total2, 100);
    }

    #[test]
    fn chunks_respect_gradual_loading() {
        let dir = ScratchDir::new("aar-gradual").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        for i in 0..20u32 {
            s.append(format!("key-{i}").as_bytes(), win, b"v").unwrap();
        }
        s.flush().unwrap();
        let mut calls = 0;
        let mut total = 0;
        while let Some(chunk) = s.get_window_chunk(win).unwrap() {
            calls += 1;
            total += chunk.iter().map(|(_, vs)| vs.len()).sum::<usize>();
        }
        assert_eq!(total, 20);
        assert!(calls >= 3, "expected several gradual chunks, got {calls}");
    }

    #[test]
    fn empty_window_returns_none() {
        let dir = ScratchDir::new("aar-empty").unwrap();
        let mut s = store(dir.path());
        assert!(s.get_window_chunk(w(0, 10)).unwrap().is_none());
    }

    #[test]
    fn file_name_roundtrip_with_negative_start() {
        for win in [w(-500, -100), w(-1, 7), w(0, 0), w(123, 456)] {
            assert_eq!(parse_window_file_name(&window_file_name(win)), Some(win));
        }
        assert_eq!(parse_window_file_name("other.log"), None);
    }

    #[test]
    fn reopen_rediscovers_files() {
        let dir = ScratchDir::new("aar-reopen").unwrap();
        let win = w(0, 100);
        {
            let mut s = store(dir.path());
            s.append(b"k", win, b"v").unwrap();
            s.flush().unwrap();
        }
        let mut s = store(dir.path());
        let state = drain_all(&mut s, win);
        assert_eq!(state, vec![(b"k".to_vec(), vec![b"v".to_vec()])]);
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let dir = ScratchDir::new("aar-ckpt").unwrap();
        let ckpt = ScratchDir::new("aar-ckpt-dst").unwrap();
        let win = w(0, 100);
        let mut s = store(dir.path());
        s.append(b"k", win, b"v1").unwrap();
        s.checkpoint(ckpt.path()).unwrap();
        s.append(b"k", win, b"v2").unwrap();
        s.restore(ckpt.path()).unwrap();
        let state = drain_all(&mut s, win);
        assert_eq!(state, vec![(b"k".to_vec(), vec![b"v1".to_vec()])]);
    }

    #[test]
    fn open_writers_are_capped_across_many_windows() {
        let dir = ScratchDir::new("aar-fdcap").unwrap();
        let mut s = AarStore::open(dir.path(), 1 << 20, 64, StoreMetrics::new_shared()).unwrap();
        // 300 distinct window boundaries, each flushed to its own file.
        for round in 0..300i64 {
            s.append(b"k", w(round * 10, round * 10 + 10), b"v")
                .unwrap();
            s.flush().unwrap();
        }
        assert!(
            s.open_writers() <= 64,
            "writer cap exceeded: {}",
            s.open_writers()
        );
        // Every window, including ones whose writer was closed, remains
        // readable and can still take appends (reopen in append mode).
        s.append(b"k2", w(0, 10), b"late").unwrap();
        s.flush().unwrap();
        let mut total = 0;
        while let Some(chunk) = s.get_window_chunk(w(0, 10)).unwrap() {
            total += chunk.len();
        }
        assert_eq!(total, 2);
        let mut total = 0;
        while let Some(chunk) = s.get_window_chunk(w(1500, 1510)).unwrap() {
            total += chunk.len();
        }
        assert_eq!(total, 1);
    }

    #[test]
    fn view_merges_disk_and_buffer_without_consuming() {
        let dir = ScratchDir::new("aar-view").unwrap();
        let mut s = store(dir.path());
        let win = w(0, 100);
        s.append(b"a", win, b"1").unwrap();
        s.append(b"b", win, b"2").unwrap();
        s.flush().unwrap();
        s.append(b"a", win, b"3").unwrap();

        let mut view = BTreeMap::new();
        s.collect_view(&mut view).unwrap();
        assert_eq!(
            view.get(&(b"a".to_vec(), win)),
            Some(&ViewValue::Values(vec![b"1".to_vec(), b"3".to_vec()]))
        );
        assert_eq!(
            view.get(&(b"b".to_vec(), win)),
            Some(&ViewValue::Values(vec![b"2".to_vec()]))
        );

        // A drain after the view sees exactly the same state.
        let state = drain_all(&mut s, win);
        let map: HashMap<Vec<u8>, Vec<Vec<u8>>> = state.into_iter().collect();
        assert_eq!(map[&b"a".to_vec()], vec![b"1".to_vec(), b"3".to_vec()]);
        assert_eq!(map[&b"b".to_vec()], vec![b"2".to_vec()]);

        // A window mid-drain disappears from subsequent views.
        let win2 = w(100, 200);
        s.append(b"c", win2, b"x").unwrap();
        s.flush().unwrap();
        let _ = s.get_window_chunk(win2).unwrap();
        let mut view2 = BTreeMap::new();
        s.collect_view(&mut view2).unwrap();
        assert!(view2.is_empty());
    }

    fn ring_store(dir: &Path) -> (AarStore, Arc<IoRing>) {
        let s = store(dir);
        let ring = Arc::new(IoRing::new(s.vfs.clone(), 2));
        let s = s.with_ring(ring.clone(), 3, &IoPolicy::with_threads(2));
        (s, ring)
    }

    #[test]
    fn async_prefetch_serves_drains() {
        let dir = ScratchDir::new("aar-ring").unwrap();
        let (mut s, ring) = ring_store(dir.path());
        let win = w(0, 100);
        s.append(b"a", win, b"1").unwrap();
        s.append(b"b", win, b"2").unwrap();
        s.flush().unwrap();
        // The window's end (100) is within the 500 ms default horizon.
        s.advance_prefetch(0).unwrap();
        assert_eq!(s.inflight.len(), 1);
        ring.wait_idle();
        s.advance_prefetch(0).unwrap();
        assert!(s.prefetched.contains_key(&win));
        // Post-snapshot flushes and unflushed buffered pairs must still
        // serve after the prefetched prefix, in arrival order.
        s.append(b"a", win, b"3").unwrap();
        s.flush().unwrap();
        s.append(b"b", win, b"4").unwrap();
        let state = drain_all(&mut s, win);
        let map: HashMap<Vec<u8>, Vec<Vec<u8>>> = state.into_iter().collect();
        assert_eq!(map[&b"a".to_vec()], vec![b"1".to_vec(), b"3".to_vec()]);
        assert_eq!(map[&b"b".to_vec()], vec![b"2".to_vec(), b"4".to_vec()]);
        assert!(s.prefetched.is_empty());
        assert!(!dir.path().join(window_file_name(win)).exists());
    }

    #[test]
    fn drain_racing_prefetch_stays_exact() {
        let dir = ScratchDir::new("aar-ring-race").unwrap();
        let (mut s, ring) = ring_store(dir.path());
        let win = w(0, 100);
        for i in 0..20u32 {
            s.append(b"k", win, &i.to_le_bytes()).unwrap();
        }
        s.flush().unwrap();
        s.advance_prefetch(0).unwrap();
        // Drain immediately — whether the background read has landed or
        // not, the drained state must be complete and exact.
        let total: usize = drain_all(&mut s, win).iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total, 20);
        // Settle the (possibly stale) completion: it must be discarded,
        // never re-served.
        ring.wait_idle();
        s.advance_prefetch(0).unwrap();
        assert!(s.prefetched.is_empty());
        assert!(s.get_window_chunk(win).unwrap().is_none());
    }

    #[test]
    fn close_waits_out_inflight_reads() {
        let dir = ScratchDir::new("aar-ring-close").unwrap();
        let (mut s, ring) = ring_store(dir.path());
        let win = w(0, 100);
        s.append(b"k", win, b"v").unwrap();
        s.flush().unwrap();
        s.advance_prefetch(0).unwrap();
        s.close().unwrap();
        assert_eq!(ring.pending(), 0);
        assert!(s.inflight.is_empty());
        // A fresh write cycle works against the bumped epoch.
        s.append(b"k", win, b"v2").unwrap();
        s.flush().unwrap();
        assert_eq!(
            drain_all(&mut s, win),
            vec![(b"k".to_vec(), vec![b"v2".to_vec()])]
        );
    }

    #[test]
    fn view_routes_through_ring() {
        let dir = ScratchDir::new("aar-ring-view").unwrap();
        let (mut s, _ring) = ring_store(dir.path());
        let win = w(0, 100);
        s.append(b"a", win, b"1").unwrap();
        s.flush().unwrap();
        s.append(b"a", win, b"2").unwrap();
        let mut view = BTreeMap::new();
        s.collect_view(&mut view).unwrap();
        assert_eq!(
            view.get(&(b"a".to_vec(), win)),
            Some(&ViewValue::Values(vec![b"1".to_vec(), b"2".to_vec()]))
        );
    }

    #[test]
    fn no_compaction_ever_runs() {
        let dir = ScratchDir::new("aar-nocompact").unwrap();
        let mut s = store(dir.path());
        for i in 0..200u32 {
            s.append(b"k", w(0, 100), &i.to_le_bytes()).unwrap();
        }
        drain_all(&mut s, w(0, 100));
        assert_eq!(s.metrics.snapshot().compactions, 0);
        assert_eq!(s.metrics.snapshot().compaction_nanos, 0);
    }
}
