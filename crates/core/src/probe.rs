//! Prefetch-accuracy telemetry shared by the AUR and AAR stores.
//!
//! The Zapridou & Ailamaki framing: a prefetch is only useful when it is
//! both *timely* (completes before the window fires) and *accurate* (the
//! data is still what the trigger needs). These families measure exactly
//! that, per store instance:
//!
//! - `prefetch_issued_total{store=…}` — windows submitted to the ring;
//! - `prefetch_hits_total{store=…}` — reads served from prefetched state;
//! - `prefetch_late_total{store=…}` — prefetches that completed after
//!   their window was consumed, or whose window fired while the read was
//!   still in flight (the foreground fell back to a synchronous read);
//! - `prefetch_wasted_bytes{store=…}` — bytes loaded in the background
//!   and then discarded because validation failed (the store compacted,
//!   restored, or appended under the in-flight read);
//! - `prefetch_timeliness_ms{store=…}` — histogram of the ETT
//!   predicted-vs-actual absolute error on prefetch-served reads: how
//!   much slack (or deficit) the predictor gave the scheduler.

use std::sync::Arc;

use flowkv_common::error::StoreError;
use flowkv_common::telemetry::{Counter, Histogram, Telemetry};

/// Adapts a [`StoreError`] for transport through a ring job's
/// `io::Result` (background closures cannot return `StoreError`
/// directly; the foreground re-wraps with path context on receipt).
pub(crate) fn ring_err(e: StoreError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// Registry handles for one store instance's prefetch accounting,
/// resolved once at store open.
pub struct PrefetchProbe {
    /// Windows submitted to the background ring.
    pub issued: Arc<Counter>,
    /// Reads served from prefetched state.
    pub hits: Arc<Counter>,
    /// Prefetches that lost the race with their window's trigger.
    pub late: Arc<Counter>,
    /// Background bytes read and then discarded by validation.
    pub wasted_bytes: Arc<Counter>,
    /// ETT |actual − predicted| (ms) on prefetch-served reads.
    pub timeliness_ms: Arc<Histogram>,
}

impl PrefetchProbe {
    /// Resolves the probe's metric families, labelled `{store=tag}`.
    pub fn new(telemetry: &Telemetry, tag: &str) -> Self {
        let registry = telemetry.registry();
        PrefetchProbe {
            issued: registry.counter(&format!("prefetch_issued_total{{store={tag}}}")),
            hits: registry.counter(&format!("prefetch_hits_total{{store={tag}}}")),
            late: registry.counter(&format!("prefetch_late_total{{store={tag}}}")),
            wasted_bytes: registry.counter(&format!("prefetch_wasted_bytes{{store={tag}}}")),
            timeliness_ms: registry.histogram(&format!("prefetch_timeliness_ms{{store={tag}}}")),
        }
    }
}
