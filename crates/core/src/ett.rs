//! Estimated-trigger-time (ETT) prediction (paper §4.2).
//!
//! FlowKV combines statically known window semantics with the dynamically
//! observed tuple timestamps to predict when each window will be read:
//!
//! - fixed/sliding/global windows trigger exactly at their end time;
//! - a session window with gap `g` cannot trigger before `t_max + g`,
//!   where `t_max` is the largest timestamp seen in the window — the safe
//!   lower bound that makes predictive batch read miss-free until new
//!   data arrives;
//! - count windows trigger on arrival counts, which event time cannot
//!   bound, so they are unpredictable and the prefetcher degrades
//!   gracefully (paper §4.2, "Trigger Time Estimation");
//! - custom window functions may supply a user predictor (paper §8).

use flowkv_common::backend::WindowKind;
use flowkv_common::types::{Timestamp, WindowId};

use crate::config::CustomEttFn;

/// A trigger-time predictor derived from the operator's window function.
#[derive(Clone)]
pub enum EttPredictor {
    /// The window triggers exactly at its end time.
    WindowEnd,
    /// Session semantics: the window cannot trigger before
    /// `max_ts + gap`.
    SessionGap {
        /// The session gap in event-time milliseconds.
        gap: i64,
    },
    /// No safe estimate exists (count windows, unknown custom windows).
    Unpredictable,
    /// A user-supplied predictor for custom window functions.
    Custom(CustomEttFn),
}

impl EttPredictor {
    /// Maps a window-function signature to its predictor; `custom` is
    /// consulted for [`WindowKind::Custom`].
    pub fn for_window_kind(kind: WindowKind, custom: Option<CustomEttFn>) -> Self {
        match kind {
            WindowKind::Fixed { .. } | WindowKind::Sliding { .. } | WindowKind::Global => {
                EttPredictor::WindowEnd
            }
            WindowKind::Session { gap } => EttPredictor::SessionGap { gap },
            WindowKind::Count { .. } => EttPredictor::Unpredictable,
            WindowKind::Custom => match custom {
                Some(f) => EttPredictor::Custom(f),
                None => EttPredictor::Unpredictable,
            },
        }
    }

    /// Predicts the trigger time of `window` for `key` after observing a
    /// maximum tuple timestamp of `max_ts`, or `None` when no safe
    /// estimate exists.
    pub fn predict(&self, key: &[u8], window: WindowId, max_ts: Timestamp) -> Option<Timestamp> {
        match self {
            EttPredictor::WindowEnd => Some(window.end),
            EttPredictor::SessionGap { gap } => Some(max_ts.saturating_add(*gap)),
            EttPredictor::Unpredictable => None,
            EttPredictor::Custom(f) => f(key, window, max_ts),
        }
    }

    /// Returns `true` when predictions from this predictor are safe lower
    /// bounds (the window cannot trigger earlier), the property that
    /// makes predictive batch read miss-free (paper §4.2).
    pub fn is_safe_lower_bound(&self) -> bool {
        matches!(
            self,
            EttPredictor::WindowEnd | EttPredictor::SessionGap { .. }
        )
    }
}

/// One predicted-vs-actual trigger-time pair, the unit of prefetch
/// accuracy accounting.
///
/// The AUR store emits one observation per consumed window that carried
/// an estimate: `predicted` is the Stat table's ETT at consume time and
/// `actual` is the store's view of stream time when the read happened.
/// The flight recorder turns these into `"ett"` trace events so prefetch
/// error distributions can be computed offline from the JSONL record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EttObservation {
    /// The estimated trigger time.
    pub predicted: Timestamp,
    /// The stream time at which the window was actually read.
    pub actual: Timestamp,
}

impl EttObservation {
    /// Signed prediction error, `actual - predicted` (saturating).
    ///
    /// Positive: the window triggered later than estimated (a safe
    /// lower-bound prediction that cost prefetch-buffer residency).
    /// Negative: the window triggered before its estimate — an unsafe
    /// prediction that forces a miss.
    pub fn error(&self) -> i64 {
        self.actual.saturating_sub(self.predicted)
    }

    /// Absolute prediction error.
    pub fn abs_error(&self) -> i64 {
        self.error().saturating_abs()
    }

    /// True when the estimate was a correct lower bound (the window did
    /// not trigger before it).
    pub fn was_safe(&self) -> bool {
        self.predicted <= self.actual
    }
}

impl std::fmt::Debug for EttPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EttPredictor::WindowEnd => f.write_str("WindowEnd"),
            EttPredictor::SessionGap { gap } => write!(f, "SessionGap({gap})"),
            EttPredictor::Unpredictable => f.write_str("Unpredictable"),
            EttPredictor::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn aligned_windows_predict_window_end() {
        let p = EttPredictor::for_window_kind(WindowKind::Fixed { size: 100 }, None);
        assert_eq!(p.predict(b"k", WindowId::new(0, 100), 42), Some(100));
        assert!(p.is_safe_lower_bound());
    }

    #[test]
    fn session_predicts_max_ts_plus_gap() {
        let p = EttPredictor::for_window_kind(WindowKind::Session { gap: 30 }, None);
        assert_eq!(p.predict(b"k", WindowId::new(0, 50), 45), Some(75));
        assert!(p.is_safe_lower_bound());
    }

    #[test]
    fn count_windows_are_unpredictable() {
        let p = EttPredictor::for_window_kind(WindowKind::Count { size: 5 }, None);
        assert_eq!(p.predict(b"k", WindowId::new(0, 50), 45), None);
        assert!(!p.is_safe_lower_bound());
    }

    #[test]
    fn custom_without_predictor_is_unpredictable() {
        let p = EttPredictor::for_window_kind(WindowKind::Custom, None);
        assert_eq!(p.predict(b"k", WindowId::new(0, 50), 45), None);
    }

    #[test]
    fn custom_with_user_predictor() {
        let f: CustomEttFn = Arc::new(|_k, w, max_ts| Some(w.end.min(max_ts + 10)));
        let p = EttPredictor::for_window_kind(WindowKind::Custom, Some(f));
        assert_eq!(p.predict(b"k", WindowId::new(0, 100), 5), Some(15));
        assert!(!p.is_safe_lower_bound());
    }

    #[test]
    fn session_prediction_saturates() {
        let p = EttPredictor::SessionGap { gap: i64::MAX };
        assert_eq!(p.predict(b"k", WindowId::new(0, 10), 5), Some(i64::MAX));
    }

    #[test]
    fn observation_error_and_safety() {
        let late = EttObservation {
            predicted: 100,
            actual: 130,
        };
        assert_eq!(late.error(), 30);
        assert_eq!(late.abs_error(), 30);
        assert!(late.was_safe());

        let early = EttObservation {
            predicted: 100,
            actual: 80,
        };
        assert_eq!(early.error(), -20);
        assert_eq!(early.abs_error(), 20);
        assert!(!early.was_safe());

        let extreme = EttObservation {
            predicted: i64::MAX,
            actual: i64::MIN,
        };
        assert_eq!(extreme.error(), i64::MIN);
        assert_eq!(extreme.abs_error(), i64::MAX);
    }
}
