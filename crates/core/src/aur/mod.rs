//! The Append and Unaligned Read store (paper §4.2, Figure 7).
//!
//! Session-style windows trigger per key at unpredictable wall-clock
//! moments, so neither per-window files (too many) nor eager merging
//! (wasted CPU) fit. The AUR store instead:
//!
//! - appends flushed value groups to a single **global data log** and
//!   their locations to an append-only **index log** ([`index_log`]);
//! - keeps a small in-memory **Stat table** of estimated trigger times
//!   ([`stat`]), updated on every append via the [`EttPredictor`];
//! - on a read miss, performs a **predictive batch read**: one sequential
//!   scan of the index log collects the locations of the requested window
//!   *and* of the `N = ratio × live-windows` windows closest to
//!   triggering, loads them in offset order, and parks them in the
//!   **prefetch buffer** ([`prefetch`]);
//! - **integrates compaction** with that machinery: dead bytes are
//!   tracked as windows are consumed, and when space amplification
//!   exceeds the configured MSA the store relocates the live byte ranges
//!   of the data log into a new generation using zero-copy range copies
//!   (paper §5).

pub mod index_log;
pub mod prefetch;
pub mod stat;

use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::error::{Result, StoreError};
use flowkv_common::ioring::{Completion, IoOutcome, IoPolicy, IoRing};
use flowkv_common::logfile::{copy_range, LogReader, LogWriter, RandomAccessLog};
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::registry::ViewValue;
use flowkv_common::telemetry::{Counter, Histogram, Telemetry};
use flowkv_common::types::{Timestamp, WindowId};
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::aar::push_view_value;
use crate::ett::{EttObservation, EttPredictor};
use crate::probe::{ring_err, PrefetchProbe};
use index_log::{decode_values, encode_values_into, IndexEntry, IndexEntryRef};
use prefetch::PrefetchBuffer;
use stat::{StatTable, StateKey};

/// Tuning knobs of one AUR store instance.
#[derive(Clone, Debug)]
pub struct AurConfig {
    /// Flush the write buffer at this size.
    pub write_buffer_bytes: usize,
    /// Fraction of live windows loaded per predictive batch read.
    pub read_batch_ratio: f64,
    /// Compact when `total / (total − dead)` exceeds this factor.
    pub max_space_amplification: f64,
}

impl Default for AurConfig {
    fn default() -> Self {
        AurConfig {
            write_buffer_bytes: 4 << 20,
            read_batch_ratio: 0.02,
            max_space_amplification: 1.5,
        }
    }
}

fn data_file_name(generation: u64) -> String {
    format!("data_{generation}.aurd")
}

/// Walks an index log from `scan_start`, skipping each state key's dead
/// prefix of consumed records, and returns the surviving entries in log
/// order. Shared by the synchronous and ring-offloaded scans of
/// `collect_view` and `compact`; callers apply Stat-liveness filtering
/// (the ring job can't touch the store's `Stat`).
fn scan_live_index(
    vfs: &Arc<dyn Vfs>,
    path: &Path,
    scan_start: u64,
    consumed: &HashMap<Vec<u8>, HashMap<WindowId, u64>>,
) -> Result<Vec<IndexEntry>> {
    let mut live: Vec<IndexEntry> = Vec::new();
    let mut seen: HashMap<StateKey, u64> = HashMap::new();
    let mut reader = LogReader::open_at_in(vfs, path, scan_start)?;
    while let Some((_, payload)) = reader.next_record()? {
        let entry = IndexEntryRef::decode(&payload)?;
        let dead_prefix = consumed
            .get(entry.key)
            .and_then(|ws| ws.get(&entry.window))
            .copied()
            .unwrap_or(0);
        let is_dead = if dead_prefix == 0 {
            false
        } else {
            let position = seen.entry((entry.key.to_vec(), entry.window)).or_insert(0);
            let dead = *position < dead_prefix;
            *position += 1;
            dead
        };
        if !is_dead {
            live.push(entry.to_owned());
        }
    }
    Ok(live)
}

fn index_file_name(generation: u64) -> String {
    format!("index_{generation}.auri")
}

/// The append-and-unaligned-read store for one partition.
pub struct AurStore {
    dir: PathBuf,
    cfg: AurConfig,
    predictor: EttPredictor,
    buffer: HashMap<StateKey, Vec<Vec<u8>>>,
    buffer_bytes: usize,
    stat: StatTable,
    prefetch: PrefetchBuffer,
    data_writer: Option<LogWriter>,
    index_writer: Option<LogWriter>,
    generation: u64,
    /// Total bytes in the data log (live + dead).
    data_total: u64,
    /// Bytes of consumed windows still occupying the data log.
    data_dead: u64,
    /// Number of *dead* leading index-log entries per state key: a
    /// consumed window's records stay in the logs until compaction, and
    /// re-appending to the same `(key, window)` must not resurrect them.
    /// Nested by key so scans can probe with borrowed slices.
    consumed_records: HashMap<Vec<u8>, HashMap<WindowId, u64>>,
    /// Offset of the first possibly-live index-log entry: windows are
    /// mostly consumed in append order, so the dead prefix of the index
    /// log grows monotonically and scans can skip it permanently.
    index_scan_start: u64,
    /// Open read handle over the current data log (invalidated when the
    /// generation changes).
    data_reader: Option<RandomAccessLog>,
    /// Largest tuple timestamp appended so far — the store's view of
    /// stream time; windows with ETT at or before it are already due.
    latest_ts: Timestamp,
    /// Reusable scratch for encoding flush records (data payloads and
    /// index entries), so steady-state flushing allocates no per-record
    /// `Vec<u8>`s.
    encode_buf: Vec<u8>,
    metrics: Arc<StoreMetrics>,
    /// Prefetch-accuracy telemetry; `None` keeps the hot path untouched.
    ett_probe: Option<EttProbe>,
    vfs: Arc<dyn Vfs>,
    /// Background I/O ring of the owning backend; `None` keeps every
    /// read synchronous (the default, and the reference semantics).
    ring: Option<Arc<IoRing>>,
    /// Completion routing tag of this instance on the shared ring.
    ring_tag: u64,
    /// Event-time lookahead for prefetch submissions (milliseconds).
    horizon: i64,
    /// Soft cap on resident plus in-flight prefetched bytes.
    budget_bytes: u64,
    /// Bumped by close/restore so completions submitted against a
    /// previous incarnation of the store are discarded on arrival.
    epoch: u64,
    /// Outstanding ring submissions by id.
    inflight: HashMap<u64, Inflight>,
    /// Windows covered by an outstanding submission, nested by key so
    /// hot-path probes use borrowed slices.
    inflight_windows: HashMap<Vec<u8>, HashSet<WindowId>>,
    /// Estimated on-disk bytes of outstanding submissions.
    inflight_bytes: u64,
    /// Prefetch issued/hit/late/wasted counters; `None` without telemetry.
    prefetch_probe: Option<PrefetchProbe>,
}

/// Foreground bookkeeping for one outstanding ring submission.
struct Inflight {
    windows: Vec<StateKey>,
    est_bytes: u64,
}

/// Payload of one background predictive-read submission.
///
/// Everything needed to decide at drain time whether the read is still
/// valid travels with the data: the generation and epoch it was read
/// from, and per window the number of index entries it covered.
struct AsyncBatch {
    generation: u64,
    epoch: u64,
    windows: Vec<AsyncWindow>,
}

struct AsyncWindow {
    key: Vec<u8>,
    window: WindowId,
    /// Index entries the window had when the read was submitted.
    disk_records: u64,
    /// Index entries the background scan actually found; must equal
    /// `disk_records` for the payload to be a complete snapshot.
    found_records: u64,
    values: Vec<Vec<u8>>,
    bytes: u64,
}

/// Telemetry handles for predicted-vs-actual trigger-time accounting,
/// resolved once at store open so consuming a window costs only atomic
/// updates plus one ring append.
struct EttProbe {
    telemetry: Arc<Telemetry>,
    /// Flight-recorder tag, `operator/p<N>` of the owning partition.
    tag: String,
    /// Histogram of `|actual - predicted|` in event-time milliseconds.
    abs_error_ms: Arc<Histogram>,
    /// Consumed windows that carried a trigger-time estimate.
    observations: Arc<Counter>,
    /// Observations whose estimate was not a safe lower bound.
    unsafe_predictions: Arc<Counter>,
}

impl EttProbe {
    fn new(telemetry: Arc<Telemetry>, tag: &str) -> Self {
        let registry = telemetry.registry();
        EttProbe {
            abs_error_ms: registry.histogram(&format!("store_ett_abs_error_ms{{store={tag}}}")),
            observations: registry.counter(&format!("store_ett_observations_total{{store={tag}}}")),
            unsafe_predictions: registry.counter(&format!(
                "store_ett_unsafe_predictions_total{{store={tag}}}"
            )),
            tag: tag.to_string(),
            telemetry,
        }
    }

    fn observe(&self, window: WindowId, obs: EttObservation, from_prefetch: bool) {
        self.observations.inc();
        self.abs_error_ms.record(obs.abs_error() as u64);
        if !obs.was_safe() {
            self.unsafe_predictions.inc();
        }
        self.telemetry.event(
            "ett",
            &self.tag,
            vec![
                ("window_start", window.start),
                ("window_end", window.end),
                ("predicted", obs.predicted),
                ("actual", obs.actual),
                ("error", obs.error()),
                ("from_prefetch", i64::from(from_prefetch)),
            ],
        );
    }
}

impl AurStore {
    /// Opens a store rooted at `dir`, recovering any existing generation.
    pub fn open(
        dir: &Path,
        cfg: AurConfig,
        predictor: EttPredictor,
        metrics: Arc<StoreMetrics>,
    ) -> Result<Self> {
        Self::open_with_vfs(dir, cfg, predictor, metrics, StdVfs::shared())
    }

    /// Opens a store rooted at `dir`, performing all file IO through `vfs`.
    pub fn open_with_vfs(
        dir: &Path,
        cfg: AurConfig,
        predictor: EttPredictor,
        metrics: Arc<StoreMetrics>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        vfs.create_dir_all(dir)
            .map_err(|e| StoreError::io_at("aur dir", dir, e))?;
        let mut store = AurStore {
            dir: dir.to_path_buf(),
            cfg,
            predictor,
            buffer: HashMap::new(),
            buffer_bytes: 0,
            stat: StatTable::new(),
            prefetch: PrefetchBuffer::new(),
            data_writer: None,
            index_writer: None,
            generation: 0,
            data_total: 0,
            data_dead: 0,
            consumed_records: HashMap::new(),
            index_scan_start: 0,
            data_reader: None,
            latest_ts: Timestamp::MIN,
            encode_buf: Vec::new(),
            metrics,
            ett_probe: None,
            vfs,
            ring: None,
            ring_tag: 0,
            horizon: 500,
            budget_bytes: 8 << 20,
            epoch: 0,
            inflight: HashMap::new(),
            inflight_windows: HashMap::new(),
            inflight_bytes: 0,
            prefetch_probe: None,
        };
        if let Some(generation) = store.find_generation()? {
            store.generation = generation;
            store.rebuild_from_index()?;
        }
        Ok(store)
    }

    /// Enables predicted-vs-actual trigger-time telemetry, tagging
    /// metrics and flight events with `tag` (typically `operator/p<N>`).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>, tag: &str) -> Self {
        self.prefetch_probe = Some(PrefetchProbe::new(&telemetry, tag));
        self.ett_probe = Some(EttProbe::new(telemetry, tag));
        self
    }

    /// Attaches the owning backend's background I/O ring: predictive
    /// batch reads become asynchronous submissions driven by
    /// [`AurStore::advance_prefetch`], and snapshot/compaction index
    /// scans run on the ring's pool. `tag` routes this instance's
    /// completions on the shared ring.
    pub fn with_ring(mut self, ring: Arc<IoRing>, tag: u64, policy: &IoPolicy) -> Self {
        self.ring = Some(ring);
        self.ring_tag = tag;
        self.horizon = policy.prefetch_horizon;
        self.budget_bytes = policy.prefetch_budget_bytes;
        self
    }

    /// Appends `value` for `(key, window)` with tuple timestamp `ts`
    /// (paper Listing 1, `Append(K, V, W, T)`).
    pub fn append(
        &mut self,
        key: &[u8],
        window: WindowId,
        value: &[u8],
        ts: Timestamp,
    ) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Write);
        // A new tuple for a prefetched window means its trigger-time
        // estimate was wrong (e.g. a session extended): evict the stale
        // copy so the eventual read fetches authoritative state.
        if self.prefetch.evict(key, window) {
            self.metrics.add_prefetch_eviction();
        }
        self.latest_ts = self.latest_ts.max(ts);
        self.stat.observe_append(key, window, ts, &self.predictor);
        self.buffer_bytes += key.len() + value.len() + 56;
        self.buffer
            .entry((key.to_vec(), window))
            .or_default()
            .push(value.to_vec());
        self.metrics.add_records_written(1);
        if self.buffer_bytes >= self.cfg.write_buffer_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Fetches and removes the values of `(key, window)` (paper Listing 1,
    /// `Get(K, W)`).
    pub fn take(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        // Land any finished background reads first: a completion parked
        // in the ring's done queue since the last tick can serve this
        // very trigger.
        self.drain_ring()?;
        let mut disk_values = Vec::new();
        let mut from_prefetch = false;
        {
            let _t = self.metrics.timer(OpCategory::Read);
            let has_disk = self
                .stat
                .get(key, window)
                .is_some_and(|s| s.disk_records > 0);
            if has_disk {
                if let Some(values) = self.prefetch.take(key, window) {
                    self.metrics.add_prefetch_hit();
                    if let Some(p) = &self.prefetch_probe {
                        p.hits.inc();
                    }
                    from_prefetch = true;
                    disk_values = values;
                } else {
                    // The window fired while its background read was
                    // still in flight: the synchronous path wins the
                    // race, and the completion is discarded at the next
                    // drain (its disk_records check fails or the window
                    // is gone from the Stat table).
                    let late = self.inflight_contains(key, window);
                    if late {
                        if let Some(p) = &self.prefetch_probe {
                            p.late.inc();
                        }
                    }
                    // When a sampled batch is active, the synchronous
                    // read a timely prefetch would have hidden is the
                    // batch's prefetch-stall share.
                    let stall_t0 = (late && flowkv_common::trace::current().is_some())
                        .then(std::time::Instant::now);
                    disk_values = self.predictive_batch_read(key, window)?;
                    if let Some(t0) = stall_t0 {
                        flowkv_common::trace::instant_here(
                            "prefetch_stall",
                            "prefetch",
                            &[("stall", t0.elapsed().as_nanos() as i64)],
                        );
                    }
                }
            }
            if let Some(stat) = self.stat.consume(key, window) {
                if let (Some(probe), Some(predicted)) = (&self.ett_probe, stat.ett) {
                    let obs = EttObservation {
                        predicted,
                        actual: self.latest_ts,
                    };
                    if from_prefetch {
                        if let Some(p) = &self.prefetch_probe {
                            p.timeliness_ms.record(obs.abs_error() as u64);
                        }
                    }
                    probe.observe(window, obs, from_prefetch);
                }
                self.data_dead += stat.disk_bytes;
                if stat.disk_records > 0 {
                    *self
                        .consumed_records
                        .entry(key.to_vec())
                        .or_default()
                        .entry(window)
                        .or_insert(0) += stat.disk_records;
                }
            }
        }
        let mem_values = self.take_buffered(key, window);
        let mut out = disk_values;
        out.extend(mem_values);
        self.metrics.add_records_read(out.len() as u64);
        self.maybe_compact()?;
        Ok(out)
    }

    /// Reads the values of `(key, window)` without consuming them.
    ///
    /// Disk state is loaded through the same predictive-batch-read
    /// machinery as [`AurStore::take`], but the window stays live: its
    /// Stat entry, disk records, and buffered values all remain, and the
    /// prefetched copy stays in the buffer for the eventual `take`.
    pub fn peek(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        {
            let _t = self.metrics.timer(OpCategory::Read);
            let has_disk = self
                .stat
                .get(key, window)
                .is_some_and(|s| s.disk_records > 0);
            if has_disk {
                if let Some(values) = self.prefetch.peek(key, window) {
                    self.metrics.add_prefetch_hit();
                    if let Some(p) = &self.prefetch_probe {
                        p.hits.inc();
                    }
                    out = values;
                } else {
                    let values = self.predictive_batch_read(key, window)?;
                    // Leave the copy in the buffer for the eventual take.
                    self.prefetch.extend((key.to_vec(), window), values.clone());
                    out = values;
                }
            }
        }
        if let Some(buffered) = self.buffer.get(&(key.to_vec(), window)) {
            out.extend(buffered.iter().cloned());
        }
        self.metrics.add_records_read(out.len() as u64);
        Ok(out)
    }

    /// Flushes the write buffer to the data and index logs.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let _t = self.metrics.timer(OpCategory::Write);
        self.ensure_writers()?;
        let groups = std::mem::take(&mut self.buffer);
        self.buffer_bytes = 0;
        for ((key, window), values) in groups {
            encode_values_into(&mut self.encode_buf, &values);
            let data_writer = self.data_writer.as_mut().expect("ensured above");
            let loc = data_writer.append(&self.encode_buf)?;
            self.data_total += loc.disk_len();
            let max_ts = self
                .stat
                .get(&key, window)
                .map(|s| s.max_ts)
                .unwrap_or(Timestamp::MIN);
            let entry = IndexEntry {
                key: key.clone(),
                window,
                max_ts,
                offset: loc.offset,
                len: loc.disk_len(),
                count: values.len() as u64,
            };
            let index_writer = self.index_writer.as_mut().expect("ensured above");
            entry.encode_into(&mut self.encode_buf);
            let index_loc = index_writer.append(&self.encode_buf)?;
            self.metrics
                .add_bytes_written(loc.disk_len() + index_loc.disk_len());
            self.stat.add_disk(&key, window, loc.disk_len());
            // Keep prefetched copies complete: if this window already sits
            // in the prefetch buffer, the newly flushed values must follow
            // its older disk values.
            if self.prefetch.contains(&key, window) {
                self.prefetch.extend((key, window), values);
            }
        }
        if let Some(w) = self.data_writer.as_mut() {
            w.flush()?;
        }
        if let Some(w) = self.index_writer.as_mut() {
            w.flush()?;
        }
        self.metrics.add_flush();
        Ok(())
    }

    /// Copies every live `(key, window)` value list into `out` for the
    /// queryable-state registry (`flowkv_common::registry`).
    ///
    /// Works like a read-only replica of the predictive batch read's
    /// index scan: it walks the index log from the committed scan start,
    /// skips each state key's dead prefix of consumed records using a
    /// *local* counter map (never touching `consumed_records` or
    /// `index_scan_start`), loads the live locations in offset order, and
    /// finally appends buffered values after disk values — the same
    /// old-then-new order a `take` serves. The prefetch buffer is a pure
    /// cache of disk state and needs no special handling.
    pub fn collect_view(
        &mut self,
        out: &mut BTreeMap<(Vec<u8>, WindowId), ViewValue>,
    ) -> Result<()> {
        if !self.stat.is_empty() {
            if let Some(w) = self.data_writer.as_mut() {
                w.flush()?;
            }
            if let Some(w) = self.index_writer.as_mut() {
                w.flush()?;
            }
            let index_path = self.dir.join(index_file_name(self.generation));
            if self.vfs.exists(&index_path) {
                let mut wanted: Vec<(StateKey, u64)> = self
                    .scan_live_index_routed("aur view scan", &index_path)?
                    .into_iter()
                    .filter(|e| self.stat.get(&e.key, e.window).is_some())
                    .map(|e| ((e.key, e.window), e.offset))
                    .collect();
                wanted.sort_by_key(|(_, offset)| *offset);
                if !wanted.is_empty() {
                    for ((key, window), values) in
                        self.read_records_routed("aur view read", wanted)?
                    {
                        for value in values {
                            push_view_value(out, key.clone(), window, value)?;
                        }
                    }
                }
            }
        }
        for ((key, window), values) in &self.buffer {
            for value in values {
                push_view_value(out, key.clone(), *window, value.clone())?;
            }
        }
        Ok(())
    }

    /// Approximate bytes of state held in memory.
    pub fn memory_bytes(&self) -> usize {
        self.buffer_bytes + self.prefetch.memory_bytes() + self.stat.memory_bytes()
    }

    /// Total bytes in the data log (live + dead), for tests and benches.
    pub fn data_log_bytes(&self) -> u64 {
        self.data_total
    }

    /// Dead bytes awaiting compaction, for tests and benches.
    pub fn dead_bytes(&self) -> u64 {
        self.data_dead
    }

    /// Number of windows currently held in the prefetch buffer.
    pub fn prefetched_windows(&self) -> usize {
        self.prefetch.len()
    }

    /// The current log generation (bumped by each compaction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Writes a self-contained snapshot into `dst`.
    pub fn checkpoint(&mut self, dst: &Path) -> Result<()> {
        self.flush()?;
        if self.data_dead > 0 {
            self.compact()?;
        }
        if let Some(w) = self.data_writer.as_mut() {
            w.sync()?;
        }
        if let Some(w) = self.index_writer.as_mut() {
            w.sync()?;
        }
        self.vfs
            .create_dir_all(dst)
            .map_err(|e| StoreError::io_at("aur checkpoint dir", dst, e))?;
        for name in ["data.aurd", "index.auri"] {
            let _ = self.vfs.remove_file(&dst.join(name));
        }
        let data_src = self.dir.join(data_file_name(self.generation));
        let index_src = self.dir.join(index_file_name(self.generation));
        if self.vfs.exists(&data_src) {
            self.vfs
                .copy(&data_src, &dst.join("data.aurd"))
                .map_err(|e| StoreError::io_at("aur checkpoint copy", &data_src, e))?;
            self.vfs
                .copy(&index_src, &dst.join("index.auri"))
                .map_err(|e| StoreError::io_at("aur checkpoint copy", &index_src, e))?;
        }
        Ok(())
    }

    /// Replaces the store contents with the snapshot in `src`.
    pub fn restore(&mut self, src: &Path) -> Result<()> {
        self.close()?;
        self.vfs
            .create_dir_all(&self.dir)
            .map_err(|e| StoreError::io_at("aur dir", &self.dir, e))?;
        self.generation = 0;
        if self.vfs.exists(&src.join("data.aurd")) {
            self.vfs
                .copy(&src.join("data.aurd"), &self.dir.join(data_file_name(0)))
                .map_err(|e| StoreError::io_at("aur restore copy", src.join("data.aurd"), e))?;
            self.vfs
                .copy(&src.join("index.auri"), &self.dir.join(index_file_name(0)))
                .map_err(|e| StoreError::io_at("aur restore copy", src.join("index.auri"), e))?;
            self.rebuild_from_index()?;
        }
        Ok(())
    }

    /// Deletes every file of the store and clears its memory.
    pub fn close(&mut self) -> Result<()> {
        // Wait out background reads before yanking the files from under
        // them, and invalidate any completion drained later.
        self.abandon_inflight();
        self.epoch += 1;
        self.buffer.clear();
        self.buffer_bytes = 0;
        self.stat.clear();
        self.prefetch.clear();
        self.consumed_records.clear();
        self.index_scan_start = 0;
        self.data_reader = None;
        self.data_writer = None;
        self.index_writer = None;
        let _ = self
            .vfs
            .remove_file(&self.dir.join(data_file_name(self.generation)));
        let _ = self
            .vfs
            .remove_file(&self.dir.join(index_file_name(self.generation)));
        self.data_total = 0;
        self.data_dead = 0;
        Ok(())
    }

    /// Removes and returns the buffered (unflushed) values of a window.
    fn take_buffered(&mut self, key: &[u8], window: WindowId) -> Vec<Vec<u8>> {
        match self.buffer.remove(&(key.to_vec(), window)) {
            Some(values) => {
                self.buffer_bytes = self.buffer_bytes.saturating_sub(
                    values
                        .iter()
                        .map(|v| key.len() + v.len() + 56)
                        .sum::<usize>(),
                );
                values
            }
            None => Vec::new(),
        }
    }

    /// The predictive batch read (paper §4.2): one index-log scan loads
    /// the target window plus the `N` windows closest to triggering.
    fn predictive_batch_read(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        self.metrics.add_prefetch_miss();
        // Make buffered log records visible to the scan.
        if let Some(w) = self.data_writer.as_mut() {
            w.flush()?;
        }
        if let Some(w) = self.index_writer.as_mut() {
            w.flush()?;
        }
        let index_path = self.dir.join(index_file_name(self.generation));
        if !self.vfs.exists(&index_path) {
            return Ok(Vec::new());
        }

        // Select the N soonest-triggering windows beyond the target,
        // plus every window already due at the target's trigger time.
        let n = (self.cfg.read_batch_ratio * self.stat.len() as f64).ceil() as usize;
        // Everything due by the store's view of stream time will be read
        // imminently; load it in this same sequential scan. A read batch
        // ratio of zero disables prefetching entirely (paper §6.4).
        let due_ett = if self.cfg.read_batch_ratio > 0.0 {
            let target_ett = self.stat.get(key, window).and_then(|s| s.ett);
            Some(target_ett.unwrap_or(Timestamp::MIN).max(self.latest_ts))
        } else {
            None
        };
        // Nested selection set so the scan can probe with borrowed keys.
        // Windows already prefetched are skipped — their data is
        // resident. Windows with an in-flight background read are NOT
        // skipped: this scan is already paying the sequential pass, and
        // deferring to a ring read that may land after the trigger (or
        // be invalidated by a flush or compaction) trades a certain hit
        // for a maybe — the slower completion is simply discarded as
        // wasted at drain time.
        let mut selected: HashMap<Vec<u8>, HashSet<WindowId>> = HashMap::new();
        for (k, w) in self.stat.select_soonest(n, due_ett, |k, w| {
            self.prefetch.contains(k, w) || (k == key && w == window)
        }) {
            selected.entry(k).or_default().insert(w);
        }
        selected.entry(key.to_vec()).or_default().insert(window);

        // One sequential scan of the index log collects the locations of
        // every selected window's records. The first
        // `consumed_records[state key]` entries of a key (counted from
        // the scan start) are dead: they belong to an already-consumed
        // incarnation of the window. While the scan is still inside a
        // contiguous dead prefix, it also advances `index_scan_start` so
        // future scans skip those entries for good.
        let mut wanted: Vec<(StateKey, u64, u64)> = Vec::new();
        let mut seen: HashMap<StateKey, u64> = HashMap::new();
        let mut prefix_dead: Vec<StateKey> = Vec::new();
        let mut new_scan_start: Option<u64> = None;
        let mut scanned_bytes = 0u64;
        let mut reader = LogReader::open_at_in(&self.vfs, &index_path, self.index_scan_start)?;
        while let Some((loc, payload)) = reader.next_record()? {
            scanned_bytes += loc.disk_len();
            let entry = IndexEntryRef::decode(&payload)?;
            // Dead-prefix accounting only matters for keys with consumed
            // records; the common case skips the per-entry bookkeeping.
            let dead_prefix = if self.consumed_records.is_empty() {
                0
            } else {
                self.consumed_records
                    .get(entry.key)
                    .and_then(|ws| ws.get(&entry.window))
                    .copied()
                    .unwrap_or(0)
            };
            let is_dead = if dead_prefix == 0 {
                false
            } else {
                let position = seen.entry((entry.key.to_vec(), entry.window)).or_insert(0);
                let dead = *position < dead_prefix;
                *position += 1;
                dead
            };
            if new_scan_start.is_none() {
                if is_dead {
                    prefix_dead.push((entry.key.to_vec(), entry.window));
                } else {
                    new_scan_start = Some(loc.offset);
                }
            }
            if is_dead || self.stat.get(entry.key, entry.window).is_none() {
                continue;
            }
            let is_selected = selected
                .get(entry.key)
                .is_some_and(|ws| ws.contains(&entry.window));
            if is_selected {
                wanted.push(((entry.key.to_vec(), entry.window), entry.offset, entry.len));
            }
        }
        self.metrics.add_bytes_read(scanned_bytes);
        // Commit the advanced scan start: the skipped entries leave the
        // per-key dead-prefix accounting.
        self.index_scan_start = new_scan_start.unwrap_or(reader.offset());
        for (key, window) in prefix_dead {
            if let Some(ws) = self.consumed_records.get_mut(&key) {
                if let Some(count) = ws.get_mut(&window) {
                    *count -= 1;
                    if *count == 0 {
                        ws.remove(&window);
                    }
                }
                if ws.is_empty() {
                    self.consumed_records.remove(&key);
                }
            }
        }

        // Load in offset order for sequential I/O; records of one window
        // stay in append order because offsets grow with appends.
        wanted.sort_by_key(|(_, offset, _)| *offset);
        if self.data_reader.is_none() {
            let data_path = self.dir.join(data_file_name(self.generation));
            self.data_reader = Some(RandomAccessLog::open_in(&self.vfs, &data_path)?);
        }
        let data = self.data_reader.as_mut().expect("opened above");
        for (state_key, offset, len) in wanted {
            let payload = data.read_record_at(offset)?;
            self.metrics.add_bytes_read(len);
            let values = decode_values(&payload)?;
            self.prefetch.extend(state_key, values);
        }
        Ok(self.prefetch.take(key, window).unwrap_or_default())
    }

    /// Runs [`scan_live_index`] for a generation's index log, offloading
    /// to the I/O ring when one is attached. Serving-snapshot and
    /// compaction scans both block on the result, but routing them
    /// through the ring keeps every disk read on the pool threads.
    fn scan_live_index_routed(
        &self,
        context: &'static str,
        path: &Path,
    ) -> Result<Vec<IndexEntry>> {
        let scan_start = self.index_scan_start;
        match self.ring.clone() {
            Some(ring) => {
                let consumed = self.consumed_records.clone();
                let job_path = path.to_path_buf();
                let job = move |vfs: &Arc<dyn Vfs>| -> std::io::Result<Box<dyn Any + Send>> {
                    let live =
                        scan_live_index(vfs, &job_path, scan_start, &consumed).map_err(ring_err)?;
                    Ok(Box::new(live) as Box<dyn Any + Send>)
                };
                let id = ring.submit(self.ring_tag, Box::new(job));
                let payload = ring
                    .wait(id)
                    .into_result()
                    .map_err(|e| StoreError::io_at(context, path, e))?;
                Ok(*payload
                    .downcast::<Vec<IndexEntry>>()
                    .map_err(|_| StoreError::invalid_state("aur ring returned foreign payload"))?)
            }
            None => scan_live_index(&self.vfs, path, scan_start, &self.consumed_records),
        }
    }

    /// Reads data-log records at the given (offset-sorted) locations,
    /// through the ring when attached; the synchronous path reuses the
    /// store's cached random-access reader.
    fn read_records_routed(
        &mut self,
        context: &'static str,
        wanted: Vec<(StateKey, u64)>,
    ) -> Result<Vec<(StateKey, Vec<Vec<u8>>)>> {
        let data_path = self.dir.join(data_file_name(self.generation));
        match self.ring.clone() {
            Some(ring) => {
                let job_path = data_path.clone();
                let job = move |vfs: &Arc<dyn Vfs>| -> std::io::Result<Box<dyn Any + Send>> {
                    let mut data = RandomAccessLog::open_in(vfs, &job_path).map_err(ring_err)?;
                    let mut loaded: Vec<(StateKey, Vec<Vec<u8>>)> =
                        Vec::with_capacity(wanted.len());
                    for (state_key, offset) in wanted {
                        let payload = data.read_record_at(offset).map_err(ring_err)?;
                        loaded.push((state_key, decode_values(&payload).map_err(ring_err)?));
                    }
                    Ok(Box::new(loaded) as Box<dyn Any + Send>)
                };
                let id = ring.submit(self.ring_tag, Box::new(job));
                let payload = ring
                    .wait(id)
                    .into_result()
                    .map_err(|e| StoreError::io_at(context, &data_path, e))?;
                Ok(*payload
                    .downcast::<Vec<(StateKey, Vec<Vec<u8>>)>>()
                    .map_err(|_| StoreError::invalid_state("aur ring returned foreign payload"))?)
            }
            None => {
                if self.data_reader.is_none() {
                    self.data_reader = Some(RandomAccessLog::open_in(&self.vfs, &data_path)?);
                }
                let mut loaded = Vec::with_capacity(wanted.len());
                if let Some(data) = self.data_reader.as_mut() {
                    for (state_key, offset) in wanted {
                        let payload = data.read_record_at(offset)?;
                        loaded.push((state_key, decode_values(&payload)?));
                    }
                }
                Ok(loaded)
            }
        }
    }

    /// True when `(key, window)` is covered by an outstanding submission.
    fn inflight_contains(&self, key: &[u8], window: WindowId) -> bool {
        self.inflight_windows
            .get(key)
            .is_some_and(|ws| ws.contains(&window))
    }

    /// Drives the background prefetcher (called by the engine at batch
    /// and watermark boundaries): drains finished ring reads into the
    /// prefetch buffer, then schedules reads for every window whose
    /// ETT-predicted trigger falls within the horizon of `stream_time`.
    pub fn advance_prefetch(&mut self, stream_time: Timestamp) -> Result<()> {
        if self.ring.is_none() {
            return Ok(());
        }
        self.drain_ring()?;
        self.submit_prefetch(stream_time)
    }

    /// Drains finished completions for this instance. Panics captured on
    /// a pool thread (injected crash faults) re-raise here, on the
    /// worker thread, exactly as if the read had been synchronous.
    fn drain_ring(&mut self) -> Result<()> {
        let Some(ring) = self.ring.clone() else {
            return Ok(());
        };
        for completion in ring.drain_tag(self.ring_tag) {
            self.settle(completion)?;
        }
        Ok(())
    }

    /// Retires one completion: unwinds the in-flight bookkeeping, then
    /// validates and installs the payload.
    fn settle(&mut self, completion: Completion) -> Result<()> {
        if let Some(meta) = self.inflight.remove(&completion.id) {
            for (key, window) in &meta.windows {
                let emptied = match self.inflight_windows.get_mut(key) {
                    Some(ws) => {
                        ws.remove(window);
                        ws.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    self.inflight_windows.remove(key);
                }
            }
            self.inflight_bytes = self.inflight_bytes.saturating_sub(meta.est_bytes);
        }
        match completion.into_result() {
            Ok(payload) => {
                let batch = payload
                    .downcast::<AsyncBatch>()
                    .map_err(|_| StoreError::invalid_state("aur ring returned foreign payload"))?;
                self.install(*batch);
                Ok(())
            }
            // A failed background read is not a store failure: the
            // window is simply served by the synchronous path instead.
            // Reads racing a compaction or restore routinely lose their
            // files mid-scan.
            Err(_) => Ok(()),
        }
    }

    /// Installs a background read's windows into the prefetch buffer,
    /// discarding any whose state moved underneath the read. The checks
    /// mirror exactly what can change between submit and drain: a
    /// compaction or restore (generation/epoch), a consume (Stat entry
    /// gone), or a flush adding records (disk_records advanced).
    fn install(&mut self, batch: AsyncBatch) {
        let stale = batch.generation != self.generation || batch.epoch != self.epoch;
        let mut installed = 0i64;
        for w in batch.windows {
            if stale {
                self.waste(w.bytes);
                continue;
            }
            match self.stat.get(&w.key, w.window) {
                Some(s)
                    if s.disk_records == w.disk_records
                        && w.found_records == w.disk_records
                        && !self.prefetch.contains(&w.key, w.window) =>
                {
                    self.metrics.add_bytes_read(w.bytes);
                    self.prefetch.extend((w.key, w.window), w.values);
                    installed += 1;
                }
                Some(_) => self.waste(w.bytes),
                // Consumed before the read completed: the prefetch was
                // issued but lost the race.
                None => {
                    if let Some(p) = &self.prefetch_probe {
                        p.late.inc();
                    }
                    self.waste(w.bytes);
                }
            }
        }
        if installed > 0 {
            flowkv_common::trace::instant_here(
                "prefetch_install",
                "prefetch",
                &[("windows", installed)],
            );
        }
    }

    fn waste(&mut self, bytes: u64) {
        if let Some(p) = &self.prefetch_probe {
            p.wasted_bytes.add(bytes);
        }
        flowkv_common::trace::instant_here(
            "prefetch_waste",
            "prefetch",
            &[("bytes", bytes as i64)],
        );
    }

    /// Submits one background read covering every window due within the
    /// prefetch horizon, bounded by the byte budget. The job replays the
    /// synchronous predictive batch read's index scan against a
    /// consistent snapshot (scan start, dead-prefix counters, index
    /// length) and never mutates store state — all bookkeeping commits
    /// happen at drain time on the worker thread.
    fn submit_prefetch(&mut self, stream_time: Timestamp) -> Result<()> {
        let Some(ring) = self.ring.clone() else {
            return Ok(());
        };
        if self.cfg.read_batch_ratio <= 0.0 || self.stat.is_empty() {
            return Ok(());
        }
        // One scan in flight per store: each job replays the index scan,
        // so stacking a fresh submission on every tick while earlier
        // ones are still running multiplies that scan instead of
        // advancing it. The next tick after the drain tops up coverage.
        if !self.inflight.is_empty() {
            return Ok(());
        }
        let due = stream_time.max(self.latest_ts).saturating_add(self.horizon);
        let candidates = self.stat.select_soonest(0, Some(due), |k, w| {
            self.prefetch.contains(k, w) || self.inflight_contains(k, w)
        });
        if candidates.is_empty() {
            return Ok(());
        }
        let resident = self.prefetch.memory_bytes() as u64 + self.inflight_bytes;
        let mut est_bytes = 0u64;
        let mut cands: Vec<(Vec<u8>, WindowId, u64)> = Vec::new();
        for (k, w) in candidates {
            // A window with unflushed buffered values is a guaranteed
            // waste: the flush that carries them advances disk_records,
            // failing the install check. Prefetch it once it is fully
            // on disk.
            let sk = (k, w);
            if self.buffer.contains_key(&sk) {
                continue;
            }
            let (k, w) = sk;
            let Some(s) = self.stat.get(&k, w) else {
                continue;
            };
            if resident + est_bytes + s.disk_bytes > self.budget_bytes {
                break;
            }
            est_bytes += s.disk_bytes;
            cands.push((k, w, s.disk_records));
        }
        if cands.is_empty() {
            return Ok(());
        }
        // Push buffered log bytes to the files and bound the scan at the
        // current end of the index log, so the background read never
        // races a concurrent foreground flush into a torn tail.
        if let Some(w) = self.data_writer.as_mut() {
            w.flush()?;
        }
        if let Some(w) = self.index_writer.as_mut() {
            w.flush()?;
        }
        let index_path = self.dir.join(index_file_name(self.generation));
        if !self.vfs.exists(&index_path) {
            return Ok(());
        }
        let index_limit = match self.index_writer.as_ref() {
            Some(w) => w.offset(),
            None => self
                .vfs
                .file_len(&index_path)
                .map_err(|e| StoreError::io_at("aur index len", &index_path, e))?,
        };
        let data_path = self.dir.join(data_file_name(self.generation));
        let scan_start = self.index_scan_start;
        let consumed = self.consumed_records.clone();
        let generation = self.generation;
        let epoch = self.epoch;
        let mut selected: HashMap<Vec<u8>, HashMap<WindowId, usize>> = HashMap::new();
        for (i, (k, w, _)) in cands.iter().enumerate() {
            selected.entry(k.clone()).or_default().insert(*w, i);
        }
        let templates = cands.clone();
        let job = move |vfs: &Arc<dyn Vfs>| -> std::io::Result<Box<dyn Any + Send>> {
            let mut out: Vec<AsyncWindow> = templates
                .into_iter()
                .map(|(key, window, disk_records)| AsyncWindow {
                    key,
                    window,
                    disk_records,
                    found_records: 0,
                    values: Vec::new(),
                    bytes: 0,
                })
                .collect();
            let mut wanted: Vec<(usize, u64)> = Vec::new();
            let mut seen: HashMap<StateKey, u64> = HashMap::new();
            let mut reader =
                LogReader::open_at_in(vfs, &index_path, scan_start).map_err(ring_err)?;
            // Stop *before* crossing the snapshot boundary: bytes past
            // `index_limit` may belong to a flush the foreground is
            // writing concurrently, and reading into a half-written
            // record would fail the whole batch as a torn file.
            while reader.offset() < index_limit {
                let Some((_, payload)) = reader.next_record().map_err(ring_err)? else {
                    break;
                };
                let entry = IndexEntryRef::decode(&payload).map_err(ring_err)?;
                let dead_prefix = consumed
                    .get(entry.key)
                    .and_then(|ws| ws.get(&entry.window))
                    .copied()
                    .unwrap_or(0);
                let is_dead = if dead_prefix == 0 {
                    false
                } else {
                    let position = seen.entry((entry.key.to_vec(), entry.window)).or_insert(0);
                    let dead = *position < dead_prefix;
                    *position += 1;
                    dead
                };
                if is_dead {
                    continue;
                }
                if let Some(&idx) = selected.get(entry.key).and_then(|ws| ws.get(&entry.window)) {
                    wanted.push((idx, entry.offset));
                }
            }
            // Offset order: sequential I/O, and a window's records stay
            // in append order — identical to the synchronous read.
            wanted.sort_by_key(|&(_, offset)| offset);
            if !wanted.is_empty() {
                let mut data = RandomAccessLog::open_in(vfs, &data_path).map_err(ring_err)?;
                for (idx, offset) in wanted {
                    let payload = data.read_record_at(offset).map_err(ring_err)?;
                    let values = decode_values(&payload).map_err(ring_err)?;
                    let slot = &mut out[idx];
                    slot.bytes += payload.len() as u64;
                    slot.found_records += 1;
                    slot.values.extend(values);
                }
            }
            Ok(Box::new(AsyncBatch {
                generation,
                epoch,
                windows: out,
            }) as Box<dyn Any + Send>)
        };
        let id = ring.submit(self.ring_tag, Box::new(job));
        if let Some(p) = &self.prefetch_probe {
            p.issued.add(cands.len() as u64);
        }
        for (k, w, _) in &cands {
            self.inflight_windows
                .entry(k.clone())
                .or_default()
                .insert(*w);
        }
        self.inflight.insert(
            id,
            Inflight {
                windows: cands.into_iter().map(|(k, w, _)| (k, w)).collect(),
                est_bytes,
            },
        );
        self.inflight_bytes += est_bytes;
        Ok(())
    }

    /// Waits out every outstanding submission, re-raising captured
    /// panics (a crash fault on a pool thread must never vanish) and
    /// discarding the payloads — callers are invalidating the store
    /// wholesale (close/restore).
    fn abandon_inflight(&mut self) {
        let Some(ring) = self.ring.clone() else {
            return;
        };
        let ids: Vec<u64> = self.inflight.keys().copied().collect();
        for id in ids {
            let completion = ring.wait(id);
            match completion.outcome {
                IoOutcome::Panicked(payload) => std::panic::resume_unwind(payload),
                IoOutcome::Ok(payload) => {
                    if let Ok(batch) = payload.downcast::<AsyncBatch>() {
                        let bytes = batch.windows.iter().map(|w| w.bytes).sum();
                        self.waste(bytes);
                    }
                }
                IoOutcome::Err(_) => {}
            }
        }
        self.inflight.clear();
        self.inflight_windows.clear();
        self.inflight_bytes = 0;
    }

    /// Compacts when space amplification exceeds the configured MSA
    /// (paper §4.2, "Integrated Compaction"; MSA definition in §6.4).
    fn maybe_compact(&mut self) -> Result<()> {
        // Compaction doubles as the index-log trimmer: batch reads scan
        // the live region of the index log, so reclaiming dead entries
        // promptly keeps those scans short. One buffer's worth of data is
        // the floor below which rewriting is pointless.
        if self.data_dead == 0 || self.data_total < self.cfg.write_buffer_bytes as u64 {
            return Ok(());
        }
        let live = self.data_total - self.data_dead;
        let amp = if live == 0 {
            f64::INFINITY
        } else {
            self.data_total as f64 / live as f64
        };
        if amp <= self.cfg.max_space_amplification {
            return Ok(());
        }
        self.compact()
    }

    /// Rewrites the data log keeping only live byte ranges (zero-copy
    /// range transfer, paper §5) and bumps the generation.
    fn compact(&mut self) -> Result<()> {
        let _t = self.metrics.timer(OpCategory::Compaction);
        if let Some(w) = self.data_writer.as_mut() {
            w.flush()?;
        }
        if let Some(w) = self.index_writer.as_mut() {
            w.flush()?;
        }
        self.data_writer = None;
        self.index_writer = None;

        let old_gen = self.generation;
        let new_gen = old_gen + 1;
        let old_index = self.dir.join(index_file_name(old_gen));
        let old_data = self.dir.join(data_file_name(old_gen));
        let new_index_path = self.dir.join(index_file_name(new_gen));
        let new_data_path = self.dir.join(data_file_name(new_gen));

        let mut moved = 0u64;
        if self.vfs.exists(&old_index) {
            // Collect live entries in append order, skipping each state
            // key's dead prefix of consumed records (everything before
            // `index_scan_start` is known dead).
            let live: Vec<IndexEntry> = self
                .scan_live_index_routed("aur compact scan", &old_index)?
                .into_iter()
                .filter(|e| self.stat.get(&e.key, e.window).is_some())
                .collect();
            // Relocate the live byte ranges of the data log.
            let mut src = self
                .vfs
                .open_read(&old_data)
                .map_err(|e| StoreError::io_at("aur compact open", &old_data, e))?;
            let mut dst = std::io::BufWriter::new(
                self.vfs
                    .create(&new_data_path)
                    .map_err(|e| StoreError::io_at("aur compact create", &new_data_path, e))?,
            );
            let mut new_index = LogWriter::create_in(&self.vfs, &new_index_path)?;
            let mut new_offset = 0u64;
            for mut entry in live {
                copy_range(&mut src, &mut dst, entry.offset, entry.len)?;
                moved += entry.len;
                entry.offset = new_offset;
                new_offset += entry.len;
                new_index.append(&entry.encode())?;
            }
            use std::io::Write as _;
            dst.flush()
                .map_err(|e| StoreError::io_at("aur compact flush", &new_data_path, e))?;
            dst.into_inner()
                .map_err(|e| {
                    StoreError::io_at("aur compact flush", &new_data_path, e.into_error())
                })?
                .sync_data()
                .map_err(|e| StoreError::io_at("aur compact sync", &new_data_path, e))?;
            new_index.sync()?;
            let _ = self.vfs.remove_file(&old_index);
            let _ = self.vfs.remove_file(&old_data);
        } else {
            // Nothing on disk: just advance the generation.
            LogWriter::create_in(&self.vfs, &new_data_path)?.sync()?;
            LogWriter::create_in(&self.vfs, &new_index_path)?.sync()?;
        }

        self.generation = new_gen;
        self.metrics.add_bytes_read(moved);
        self.metrics.add_bytes_written(moved);
        self.metrics.add_compaction();
        self.data_total = moved;
        self.data_dead = 0;
        // The rewrite dropped every dead record.
        self.consumed_records.clear();
        self.index_scan_start = 0;
        self.data_reader = None;
        Ok(())
    }

    fn ensure_writers(&mut self) -> Result<()> {
        if self.data_writer.is_none() {
            let data_path = self.dir.join(data_file_name(self.generation));
            let index_path = self.dir.join(index_file_name(self.generation));
            self.data_writer = Some(if self.vfs.exists(&data_path) {
                LogWriter::open_append_in(&self.vfs, &data_path)?
            } else {
                LogWriter::create_in(&self.vfs, &data_path)?
            });
            self.index_writer = Some(if self.vfs.exists(&index_path) {
                LogWriter::open_append_in(&self.vfs, &index_path)?
            } else {
                LogWriter::create_in(&self.vfs, &index_path)?
            });
        }
        Ok(())
    }

    /// Finds the highest on-disk generation, if any.
    fn find_generation(&self) -> Result<Option<u64>> {
        let mut best: Option<u64> = None;
        let names = self
            .vfs
            .read_dir_names(&self.dir)
            .map_err(|e| StoreError::io_at("aur scan", &self.dir, e))?;
        for name in names {
            if let Some(generation) = name
                .strip_prefix("index_")
                .and_then(|s| s.strip_suffix(".auri"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                best = Some(best.map_or(generation, |b: u64| b.max(generation)));
            }
        }
        Ok(best)
    }

    /// Rebuilds the Stat table and byte accounting from the index log.
    ///
    /// A crash may leave a torn record at the index-log tail (the data
    /// log is always flushed first, so at worst the index under-reports
    /// the data log's final record — which then becomes dead weight for
    /// the next compaction). The torn tail is truncated before replay.
    fn rebuild_from_index(&mut self) -> Result<()> {
        self.stat.clear();
        self.prefetch.clear();
        self.consumed_records.clear();
        self.index_scan_start = 0;
        self.data_reader = None;
        self.data_total = 0;
        self.data_dead = 0;
        let index_path = self.dir.join(index_file_name(self.generation));
        if !self.vfs.exists(&index_path) {
            return Ok(());
        }
        // Truncate any torn tail left by a crash mid-flush.
        LogWriter::open_append_in(&self.vfs, &index_path)?;
        let mut reader = LogReader::open_in(&self.vfs, &index_path)?;
        while let Some((_, payload)) = reader.next_record()? {
            let entry = IndexEntry::decode(&payload)?;
            self.latest_ts = self.latest_ts.max(entry.max_ts);
            self.stat.rebuild_entry(
                &entry.key,
                entry.window,
                entry.max_ts,
                entry.len,
                &self.predictor,
            );
            self.data_total += entry.len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::scratch::ScratchDir;

    fn cfg_small() -> AurConfig {
        AurConfig {
            write_buffer_bytes: 1 << 10,
            read_batch_ratio: 0.5,
            max_space_amplification: 1.5,
        }
    }

    fn session_store(dir: &Path, cfg: AurConfig) -> AurStore {
        AurStore::open(
            dir,
            cfg,
            EttPredictor::SessionGap { gap: 100 },
            StoreMetrics::new_shared(),
        )
        .unwrap()
    }

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    #[test]
    fn memory_only_take() {
        let dir = ScratchDir::new("aur-mem").unwrap();
        let mut s = session_store(dir.path(), cfg_small());
        s.append(b"k", w(0, 100), b"v1", 10).unwrap();
        s.append(b"k", w(0, 100), b"v2", 20).unwrap();
        assert_eq!(
            s.take(b"k", w(0, 100)).unwrap(),
            vec![b"v1".to_vec(), b"v2".to_vec()]
        );
        assert!(s.take(b"k", w(0, 100)).unwrap().is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let dir = ScratchDir::new("aur-peek").unwrap();
        let mut s = session_store(dir.path(), cfg_small());
        s.append(b"k", w(0, 100), b"v1", 10).unwrap();
        s.flush().unwrap();
        s.append(b"k", w(0, 100), b"v2", 20).unwrap();
        // Repeated peeks see the same complete state.
        for _ in 0..3 {
            assert_eq!(
                s.peek(b"k", w(0, 100)).unwrap(),
                vec![b"v1".to_vec(), b"v2".to_vec()]
            );
        }
        // The eventual take still consumes everything exactly once.
        assert_eq!(
            s.take(b"k", w(0, 100)).unwrap(),
            vec![b"v1".to_vec(), b"v2".to_vec()]
        );
        assert!(s.take(b"k", w(0, 100)).unwrap().is_empty());
    }

    #[test]
    fn disk_and_memory_combine_in_append_order() {
        let dir = ScratchDir::new("aur-combine").unwrap();
        let mut s = session_store(dir.path(), cfg_small());
        s.append(b"k", w(0, 100), b"old", 10).unwrap();
        s.flush().unwrap();
        s.append(b"k", w(0, 100), b"new", 20).unwrap();
        assert_eq!(
            s.take(b"k", w(0, 100)).unwrap(),
            vec![b"old".to_vec(), b"new".to_vec()]
        );
    }

    #[test]
    fn batch_read_prefetches_soonest_windows() {
        let dir = ScratchDir::new("aur-pbr").unwrap();
        let mut s = session_store(dir.path(), cfg_small());
        // Ten keys with staggered timestamps, all flushed to disk.
        for i in 0..10i64 {
            let key = format!("key-{i}");
            s.append(key.as_bytes(), w(0, 1000), b"v", 10 * i).unwrap();
        }
        s.flush().unwrap();
        // Reading key-0 must prefetch the other soonest windows too.
        let got = s.take(b"key-0", w(0, 1000)).unwrap();
        assert_eq!(got, vec![b"v".to_vec()]);
        assert!(
            s.prefetched_windows() >= 4,
            "prefetched {} windows",
            s.prefetched_windows()
        );
        let m = s.metrics.snapshot();
        assert_eq!(m.prefetch_misses, 1);
        // The prefetched windows now hit without further misses.
        let got = s.take(b"key-1", w(0, 1000)).unwrap();
        assert_eq!(got, vec![b"v".to_vec()]);
        let m = s.metrics.snapshot();
        assert_eq!(m.prefetch_hits, 1);
        assert_eq!(m.prefetch_misses, 1);
    }

    #[test]
    fn wrong_ett_evicts_prefetched_state() {
        let dir = ScratchDir::new("aur-evict").unwrap();
        let mut s = session_store(dir.path(), cfg_small());
        for key in [b"a" as &[u8], b"b"] {
            s.append(key, w(0, 1000), b"v1", 10).unwrap();
        }
        s.flush().unwrap();
        // Prefetch both windows by reading `a`.
        s.take(b"a", w(0, 1000)).unwrap();
        assert!(s.prefetch.contains(b"b", w(0, 1000)));
        // A late tuple for `b` invalidates its estimate.
        s.append(b"b", w(0, 1000), b"v2", 50).unwrap();
        assert!(!s.prefetch.contains(b"b", w(0, 1000)));
        assert_eq!(s.metrics.snapshot().prefetch_evictions, 1);
        // The read still returns complete, ordered state.
        assert_eq!(
            s.take(b"b", w(0, 1000)).unwrap(),
            vec![b"v1".to_vec(), b"v2".to_vec()]
        );
    }

    #[test]
    fn flush_into_prefetched_window_stays_complete() {
        let dir = ScratchDir::new("aur-flushpref").unwrap();
        let mut s = session_store(dir.path(), cfg_small());
        s.append(b"a", w(0, 1000), b"v", 10).unwrap();
        s.append(b"b", w(0, 1000), b"b1", 10).unwrap();
        s.flush().unwrap();
        s.take(b"a", w(0, 1000)).unwrap();
        assert!(s.prefetch.contains(b"b", w(0, 1000)));
        // Appending to `b` evicts; re-buffer and flush while NOT
        // prefetched, then reread: order must be b1, b2.
        s.append(b"b", w(0, 1000), b"b2", 20).unwrap();
        s.flush().unwrap();
        assert_eq!(
            s.take(b"b", w(0, 1000)).unwrap(),
            vec![b"b1".to_vec(), b"b2".to_vec()]
        );
    }

    #[test]
    fn compaction_reclaims_dead_bytes() {
        let dir = ScratchDir::new("aur-compact").unwrap();
        let mut cfg = cfg_small();
        cfg.read_batch_ratio = 0.0;
        let mut s = session_store(dir.path(), cfg);
        // Write and consume many windows so dead bytes accumulate.
        for round in 0..50i64 {
            for key in 0..5 {
                let k = format!("k{key}");
                s.append(
                    k.as_bytes(),
                    w(round * 10, round * 10 + 10),
                    &[7u8; 64],
                    round,
                )
                .unwrap();
            }
            s.flush().unwrap();
            for key in 0..5 {
                let k = format!("k{key}");
                let vals = s
                    .take(k.as_bytes(), w(round * 10, round * 10 + 10))
                    .unwrap();
                assert_eq!(vals.len(), 1);
            }
        }
        let m = s.metrics.snapshot();
        assert!(m.compactions > 0, "no compaction ran");
        assert!(s.generation() > 0);
        // Dead space is bounded by the MSA after compactions.
        if s.data_log_bytes() >= s.cfg.write_buffer_bytes as u64 {
            let live = s.data_log_bytes() - s.dead_bytes();
            let amp = s.data_log_bytes() as f64 / live.max(1) as f64;
            assert!(amp <= 2.0, "amplification {amp}");
        }
    }

    #[test]
    fn compaction_preserves_unread_windows() {
        let dir = ScratchDir::new("aur-compact-live").unwrap();
        let mut cfg = cfg_small();
        cfg.read_batch_ratio = 0.0;
        cfg.write_buffer_bytes = 256;
        let mut s = session_store(dir.path(), cfg);
        // `keeper` stays live across many consume cycles.
        s.append(b"keeper", w(0, 10_000), b"precious", 1).unwrap();
        s.flush().unwrap();
        for round in 0..100i64 {
            s.append(b"churn", w(round, round + 1), &[0u8; 64], round)
                .unwrap();
            s.flush().unwrap();
            s.take(b"churn", w(round, round + 1)).unwrap();
        }
        assert!(s.metrics.snapshot().compactions > 0);
        assert_eq!(
            s.take(b"keeper", w(0, 10_000)).unwrap(),
            vec![b"precious".to_vec()]
        );
    }

    #[test]
    fn ratio_zero_disables_prefetching() {
        let dir = ScratchDir::new("aur-ratio0").unwrap();
        let mut cfg = cfg_small();
        cfg.read_batch_ratio = 0.0;
        let mut s = session_store(dir.path(), cfg);
        for i in 0..5i64 {
            s.append(format!("k{i}").as_bytes(), w(0, 1000), b"v", i)
                .unwrap();
        }
        s.flush().unwrap();
        for i in 0..5i64 {
            s.take(format!("k{i}").as_bytes(), w(0, 1000)).unwrap();
        }
        let m = s.metrics.snapshot();
        assert_eq!(m.prefetch_hits, 0);
        assert_eq!(m.prefetch_misses, 5);
    }

    /// Validates the paper's Equation 1: with hit ratio `r`, each tuple
    /// is read `1/r` times on average.
    #[test]
    fn read_amplification_follows_equation_one() {
        // (a) Mechanism: an evicted prefetch forces exactly one re-read.
        let dir = ScratchDir::new("aur-eq1").unwrap();
        let mut s = session_store(dir.path(), cfg_small());
        for key in [b"a" as &[u8], b"b"] {
            s.append(key, w(0, 1000), b"v1", 10).unwrap();
        }
        s.flush().unwrap();
        // Reading `a` prefetches `b`; appending to `b` evicts it; the
        // later read of `b` must go back to disk (a second miss).
        s.take(b"a", w(0, 1000)).unwrap();
        s.append(b"b", w(0, 1000), b"v2", 50).unwrap();
        s.take(b"b", w(0, 1000)).unwrap();
        let m = s.metrics.snapshot();
        assert_eq!(m.prefetch_evictions, 1);
        assert_eq!(m.prefetch_misses, 2, "eviction must force a re-read");

        // (b) The formula itself: mean retries of a geometric process
        // with success probability r is 1/r (sum n·r(1−r)^(n−1) = 1/r).
        for r in [0.5f64, 0.9, 0.93, 0.99] {
            let analytic: f64 = (1..1_000)
                .map(|n| n as f64 * r * (1.0 - r).powi(n - 1))
                .sum();
            assert!(
                (analytic - 1.0 / r).abs() < 1e-6,
                "Eq. 1 mismatch at r = {r}: {analytic} vs {}",
                1.0 / r
            );
        }
    }

    #[test]
    fn view_sees_live_state_and_skips_consumed_windows() {
        let dir = ScratchDir::new("aur-view").unwrap();
        let mut cfg = cfg_small();
        cfg.read_batch_ratio = 0.0;
        let mut s = session_store(dir.path(), cfg);
        s.append(b"live", w(0, 100), b"d1", 10).unwrap();
        s.append(b"gone", w(0, 100), b"x", 10).unwrap();
        s.flush().unwrap();
        s.append(b"live", w(0, 100), b"d2", 20).unwrap();
        s.flush().unwrap();
        s.append(b"live", w(0, 100), b"mem", 30).unwrap();
        // Consume one window so its index entries become a dead prefix.
        s.take(b"gone", w(0, 100)).unwrap();

        let mut view = BTreeMap::new();
        s.collect_view(&mut view).unwrap();
        assert_eq!(view.len(), 1);
        assert_eq!(
            view.get(&(b"live".to_vec(), w(0, 100))),
            Some(&ViewValue::Values(vec![
                b"d1".to_vec(),
                b"d2".to_vec(),
                b"mem".to_vec()
            ]))
        );

        // Building the view consumed nothing and broke no invariants.
        assert_eq!(
            s.take(b"live", w(0, 100)).unwrap(),
            vec![b"d1".to_vec(), b"d2".to_vec(), b"mem".to_vec()]
        );
        assert!(s.take(b"live", w(0, 100)).unwrap().is_empty());
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let dir = ScratchDir::new("aur-ckpt").unwrap();
        let ckpt = ScratchDir::new("aur-ckpt-dst").unwrap();
        let mut s = session_store(dir.path(), cfg_small());
        s.append(b"k", w(0, 100), b"v1", 10).unwrap();
        s.append(b"dead", w(0, 100), b"x", 10).unwrap();
        s.flush().unwrap();
        s.take(b"dead", w(0, 100)).unwrap();
        s.checkpoint(ckpt.path()).unwrap();
        s.append(b"k", w(0, 100), b"lost", 20).unwrap();
        s.restore(ckpt.path()).unwrap();
        assert_eq!(s.take(b"k", w(0, 100)).unwrap(), vec![b"v1".to_vec()]);
        assert!(s.take(b"dead", w(0, 100)).unwrap().is_empty());
    }

    #[test]
    fn telemetry_emits_predicted_vs_actual_events() {
        let dir = ScratchDir::new("aur-telemetry").unwrap();
        let telemetry = Telemetry::new_shared();
        let mut s = session_store(dir.path(), cfg_small())
            .with_telemetry(Arc::clone(&telemetry), "median/p0");
        // Session gap 100: appending at ts 10 predicts ETT 110. Stream
        // time then advances to 150 before the take, so actual = 150.
        s.append(b"k", w(0, 1000), b"v", 10).unwrap();
        s.append(b"other", w(0, 1000), b"v", 150).unwrap();
        s.take(b"k", w(0, 1000)).unwrap();

        let events = telemetry.recorder().drain();
        assert_eq!(events.len(), 1);
        let event = &events[0];
        assert_eq!(event.kind, "ett");
        assert_eq!(event.tag, "median/p0");
        let field = |name: &str| {
            event
                .fields
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(field("predicted"), 110);
        assert_eq!(field("actual"), 150);
        assert_eq!(field("error"), 40);

        let samples = telemetry.registry().snapshot();
        let observations = samples
            .iter()
            .find(|s| s.name == "store_ett_observations_total{store=median/p0}")
            .unwrap();
        assert_eq!(
            observations.value,
            flowkv_common::telemetry::SampleValue::Counter(1)
        );
    }

    #[test]
    fn reopen_recovers_stat_table() {
        let dir = ScratchDir::new("aur-reopen").unwrap();
        {
            let mut s = session_store(dir.path(), cfg_small());
            s.append(b"k", w(0, 100), b"v", 42).unwrap();
            s.flush().unwrap();
            if let Some(writer) = s.data_writer.as_mut() {
                writer.sync().unwrap();
            }
            if let Some(writer) = s.index_writer.as_mut() {
                writer.sync().unwrap();
            }
        }
        let mut s = session_store(dir.path(), cfg_small());
        // ETT rebuilt from the persisted max_ts: 42 + gap 100.
        assert_eq!(s.stat.get(b"k", w(0, 100)).unwrap().ett, Some(142));
        assert_eq!(s.take(b"k", w(0, 100)).unwrap(), vec![b"v".to_vec()]);
    }

    fn ring_store(dir: &Path) -> (AurStore, Arc<IoRing>) {
        let s = session_store(dir, cfg_small());
        let ring = Arc::new(IoRing::new(s.vfs.clone(), 2));
        let s = s.with_ring(ring.clone(), 7, &IoPolicy::with_threads(2));
        (s, ring)
    }

    #[test]
    fn async_prefetch_serves_takes_from_buffer() {
        let dir = ScratchDir::new("aur-ring-hit").unwrap();
        let (mut s, ring) = ring_store(dir.path());
        s.append(b"a", w(0, 100), b"v1", 10).unwrap();
        s.append(b"b", w(0, 100), b"v2", 20).unwrap();
        s.flush().unwrap();
        // Both predicted triggers (last ts + gap 100) fall within the
        // default 500 ms horizon of stream time 50: one submission
        // covers both windows.
        s.advance_prefetch(50).unwrap();
        assert_eq!(s.inflight.len(), 1);
        ring.wait_idle();
        s.advance_prefetch(50).unwrap();
        assert_eq!(s.prefetched_windows(), 2);
        assert_eq!(s.take(b"a", w(0, 100)).unwrap(), vec![b"v1".to_vec()]);
        assert_eq!(s.take(b"b", w(0, 100)).unwrap(), vec![b"v2".to_vec()]);
    }

    #[test]
    fn async_prefetch_rejects_stale_reads() {
        let dir = ScratchDir::new("aur-ring-stale").unwrap();
        let (mut s, ring) = ring_store(dir.path());
        s.append(b"a", w(0, 100), b"v1", 10).unwrap();
        s.flush().unwrap();
        s.advance_prefetch(50).unwrap();
        // The window grows under the in-flight read: whether the job ran
        // before or after this flush, its snapshot's record count no
        // longer matches the Stat entry and validation must discard it.
        s.append(b"a", w(0, 100), b"v2", 20).unwrap();
        s.flush().unwrap();
        ring.wait_idle();
        s.advance_prefetch(50).unwrap();
        assert_eq!(s.prefetched_windows(), 0);
        assert_eq!(
            s.take(b"a", w(0, 100)).unwrap(),
            vec![b"v1".to_vec(), b"v2".to_vec()]
        );
    }

    #[test]
    fn close_waits_out_inflight_reads() {
        let dir = ScratchDir::new("aur-ring-close").unwrap();
        let (mut s, ring) = ring_store(dir.path());
        s.append(b"a", w(0, 100), b"v1", 10).unwrap();
        s.flush().unwrap();
        s.advance_prefetch(50).unwrap();
        s.close().unwrap();
        assert_eq!(ring.pending(), 0);
        assert!(s.inflight.is_empty());
        // A fresh write cycle works against the bumped epoch.
        s.append(b"a", w(200, 300), b"v2", 210).unwrap();
        s.flush().unwrap();
        assert_eq!(s.take(b"a", w(200, 300)).unwrap(), vec![b"v2".to_vec()]);
    }
}
