//! The prefetch buffer of predictive batch read (paper §4.2).
//!
//! States loaded by a batch read wait here, organized per window. A hit
//! serves a window trigger from memory; a wrong trigger-time estimate
//! (a new tuple arriving for a prefetched session window) evicts the
//! window so the next read fetches the authoritative on-disk state again.
//!
//! The map is nested `key → window → values` rather than keyed by the
//! `(Vec<u8>, WindowId)` pair so the hot-path membership probes
//! ([`PrefetchBuffer::contains`], [`PrefetchBuffer::peek`],
//! [`PrefetchBuffer::take`]) can look up a borrowed `&[u8]` directly —
//! `HashMap<Vec<u8>, _>` is `Borrow<[u8]>`-queryable, while the tuple key
//! forced a `key.to_vec()` allocation on *every* probe, including the
//! misses that dominate batch-read window selection.

use std::collections::HashMap;

use super::stat::StateKey;
use flowkv_common::types::WindowId;

/// In-memory buffer of prefetched window states.
#[derive(Debug, Default)]
pub struct PrefetchBuffer {
    map: HashMap<Vec<u8>, HashMap<WindowId, Vec<Vec<u8>>>>,
    /// Buffered windows across all keys (not `map.len()`).
    windows: usize,
    bytes: usize,
}

impl PrefetchBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        PrefetchBuffer::default()
    }

    /// Returns `true` when the window's state is buffered. Allocation-free.
    pub fn contains(&self, key: &[u8], window: WindowId) -> bool {
        self.map.get(key).is_some_and(|ws| ws.contains_key(&window))
    }

    /// Appends loaded values for a window (batch reads may load a window
    /// from several data-log records).
    pub fn extend(&mut self, state_key: StateKey, values: Vec<Vec<u8>>) {
        let (key, window) = state_key;
        self.bytes += values.iter().map(|v| v.len() + 24).sum::<usize>();
        let slot = self.map.entry(key).or_default().entry(window);
        if matches!(slot, std::collections::hash_map::Entry::Vacant(_)) {
            self.windows += 1;
        }
        slot.or_default().extend(values);
    }

    /// Returns a clone of a window's buffered values without removing
    /// them (a non-destructive hit for `peek` reads). Allocation-free on
    /// miss.
    pub fn peek(&self, key: &[u8], window: WindowId) -> Option<Vec<Vec<u8>>> {
        self.map.get(key)?.get(&window).cloned()
    }

    /// Removes and returns a window's buffered values (a prefetch hit).
    /// Allocation-free, hit or miss.
    pub fn take(&mut self, key: &[u8], window: WindowId) -> Option<Vec<Vec<u8>>> {
        let windows = self.map.get_mut(key)?;
        let values = windows.remove(&window)?;
        if windows.is_empty() {
            self.map.remove(key);
        }
        self.windows -= 1;
        self.bytes = self
            .bytes
            .saturating_sub(values.iter().map(|v| v.len() + 24).sum());
        Some(values)
    }

    /// Drops a window whose trigger-time estimate proved wrong.
    ///
    /// Returns `true` when something was evicted.
    pub fn evict(&mut self, key: &[u8], window: WindowId) -> bool {
        self.take(key, window).is_some()
    }

    /// Number of buffered windows.
    pub fn len(&self) -> usize {
        self.windows
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.windows == 0
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    /// Drops everything (used on restore).
    pub fn clear(&mut self) {
        self.map.clear();
        self.windows = 0;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    #[test]
    fn extend_take_roundtrip() {
        let mut p = PrefetchBuffer::new();
        p.extend((b"k".to_vec(), w(0, 10)), vec![b"a".to_vec()]);
        p.extend((b"k".to_vec(), w(0, 10)), vec![b"b".to_vec()]);
        assert!(p.contains(b"k", w(0, 10)));
        assert_eq!(
            p.take(b"k", w(0, 10)).unwrap(),
            vec![b"a".to_vec(), b"b".to_vec()]
        );
        assert!(p.take(b"k", w(0, 10)).is_none());
        assert_eq!(p.memory_bytes(), 0);
    }

    #[test]
    fn eviction_reports_presence() {
        let mut p = PrefetchBuffer::new();
        p.extend((b"k".to_vec(), w(0, 10)), vec![b"a".to_vec()]);
        assert!(p.evict(b"k", w(0, 10)));
        assert!(!p.evict(b"k", w(0, 10)));
        assert!(p.is_empty());
    }

    #[test]
    fn byte_accounting_tracks_sizes() {
        let mut p = PrefetchBuffer::new();
        p.extend((b"k".to_vec(), w(0, 10)), vec![vec![0u8; 100]]);
        assert!(p.memory_bytes() >= 100);
        p.clear();
        assert_eq!(p.memory_bytes(), 0);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn len_counts_windows_across_keys() {
        let mut p = PrefetchBuffer::new();
        p.extend((b"a".to_vec(), w(0, 10)), vec![b"x".to_vec()]);
        p.extend((b"a".to_vec(), w(10, 20)), vec![b"y".to_vec()]);
        p.extend((b"b".to_vec(), w(0, 10)), vec![b"z".to_vec()]);
        assert_eq!(p.len(), 3);
        assert!(p.take(b"a", w(0, 10)).is_some());
        assert_eq!(p.len(), 2);
        // Sibling window under the same key survives its neighbour's take.
        assert!(p.contains(b"a", w(10, 20)));
        assert!(p.take(b"b", w(0, 10)).is_some());
        assert!(p.take(b"a", w(10, 20)).is_some());
        assert!(p.is_empty());
    }
}
