//! The in-memory Stat table of the AUR store (paper §4.2, Figure 7).
//!
//! One small entry per live `(key, window)` pair: the estimated trigger
//! time, the maximum observed timestamp, and how many bytes of the
//! window's state sit in the data log. Data *locations* deliberately stay
//! on disk in the index log — the Stat table is what must fit in memory
//! even when windows number in the millions.
//!
//! The table nests `key → window → stat` so the index-scan hot path can
//! probe liveness with a borrowed key slice, without allocating a
//! composite key per scanned entry.

use std::collections::HashMap;

use flowkv_common::types::{Timestamp, WindowId};

use crate::ett::EttPredictor;

/// Identifies one window of one key.
pub type StateKey = (Vec<u8>, WindowId);

/// Live-window bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowStat {
    /// Estimated trigger time, `None` when unpredictable.
    pub ett: Option<Timestamp>,
    /// Largest tuple timestamp observed in the window.
    pub max_ts: Timestamp,
    /// Bytes of this window's state in the data log (record framing
    /// included).
    pub disk_bytes: u64,
    /// Number of data-log records holding this window's state.
    pub disk_records: u64,
}

/// The Stat table: ETTs and disk footprints per live window.
#[derive(Debug, Default)]
pub struct StatTable {
    map: HashMap<Vec<u8>, HashMap<WindowId, WindowStat>>,
    len: usize,
}

impl StatTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StatTable::default()
    }

    /// Updates ETT bookkeeping for an appended tuple (paper: "ETTs are
    /// maintained as an in-memory hash table, updated upon every tuple
    /// arrival").
    pub fn observe_append(
        &mut self,
        key: &[u8],
        window: WindowId,
        ts: Timestamp,
        predictor: &EttPredictor,
    ) {
        let windows = match self.map.get_mut(key) {
            Some(w) => w,
            None => self.map.entry(key.to_vec()).or_default(),
        };
        let len = &mut self.len;
        let entry = windows.entry(window).or_insert_with(|| {
            *len += 1;
            WindowStat {
                ett: None,
                max_ts: Timestamp::MIN,
                disk_bytes: 0,
                disk_records: 0,
            }
        });
        entry.max_ts = entry.max_ts.max(ts);
        entry.ett = predictor.predict(key, window, entry.max_ts);
    }

    /// Records that `bytes` of the window's state were flushed to disk.
    pub fn add_disk(&mut self, key: &[u8], window: WindowId, bytes: u64) {
        let windows = match self.map.get_mut(key) {
            Some(w) => w,
            None => self.map.entry(key.to_vec()).or_default(),
        };
        let len = &mut self.len;
        let entry = windows.entry(window).or_insert_with(|| {
            *len += 1;
            WindowStat::default()
        });
        entry.disk_bytes += bytes;
        entry.disk_records += 1;
    }

    /// Rebuilds one window's bookkeeping from a recovered index entry:
    /// the persisted `max_ts` re-derives the trigger-time estimate and
    /// `len` restores the disk footprint.
    pub fn rebuild_entry(
        &mut self,
        key: &[u8],
        window: WindowId,
        max_ts: Timestamp,
        len: u64,
        predictor: &EttPredictor,
    ) {
        self.observe_append(key, window, max_ts, predictor);
        self.add_disk(key, window, len);
    }

    /// Looks up a window's stat without allocating.
    pub fn get(&self, key: &[u8], window: WindowId) -> Option<&WindowStat> {
        self.map.get(key)?.get(&window)
    }

    /// Removes and returns a window's stat when it is consumed.
    pub fn consume(&mut self, key: &[u8], window: WindowId) -> Option<WindowStat> {
        let windows = self.map.get_mut(key)?;
        let stat = windows.remove(&window)?;
        if windows.is_empty() {
            self.map.remove(key);
        }
        self.len -= 1;
        Some(stat)
    }

    /// Number of live windows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no windows are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(key, window, stat)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, WindowId, &WindowStat)> {
        self.map
            .iter()
            .flat_map(|(k, ws)| ws.iter().map(move |(w, s)| (k, *w, s)))
    }

    /// Returns the live windows with on-disk state whose ETTs are the
    /// soonest, skipping unpredictable windows and any for which `skip`
    /// returns `true` (paper §4.2, "Selecting Windows To Be Read").
    ///
    /// At least `n` windows are returned (when available); additionally,
    /// *every* window already due — ETT at or before `due_ett` — is
    /// included even beyond `n`, because such windows are guaranteed to
    /// be read no later than the one that triggered this batch, so
    /// loading them in the same sequential scan is strictly cheaper than
    /// scanning again (scale adaptation documented in DESIGN.md §5).
    pub fn select_soonest(
        &self,
        n: usize,
        due_ett: Option<Timestamp>,
        mut skip: impl FnMut(&[u8], WindowId) -> bool,
    ) -> Vec<StateKey> {
        let mut candidates: Vec<(Timestamp, &Vec<u8>, WindowId)> = self
            .iter()
            .filter(|(k, w, stat)| stat.disk_records > 0 && !skip(k, *w))
            .filter_map(|(k, w, stat)| stat.ett.map(|ett| (ett, k, w)))
            .collect();
        candidates.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.cmp(b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        candidates
            .into_iter()
            .enumerate()
            .take_while(|(i, (ett, _, _))| *i < n || due_ett.is_some_and(|due| *ett <= due))
            .map(|(_, (_, k, w))| (k.clone(), w))
            .collect()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.map
            .iter()
            .map(|(k, ws)| k.len() + 48 + ws.len() * 64)
            .sum()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    #[test]
    fn observe_append_tracks_max_ts_and_ett() {
        let mut t = StatTable::new();
        let p = EttPredictor::SessionGap { gap: 10 };
        t.observe_append(b"k", w(0, 50), 5, &p);
        assert_eq!(t.get(b"k", w(0, 50)).unwrap().ett, Some(15));
        t.observe_append(b"k", w(0, 50), 30, &p);
        assert_eq!(t.get(b"k", w(0, 50)).unwrap().ett, Some(40));
        // Out-of-order timestamps do not shrink the estimate.
        t.observe_append(b"k", w(0, 50), 10, &p);
        assert_eq!(t.get(b"k", w(0, 50)).unwrap().ett, Some(40));
        assert_eq!(t.get(b"k", w(0, 50)).unwrap().max_ts, 30);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn disk_accounting_accumulates() {
        let mut t = StatTable::new();
        t.add_disk(b"k", w(0, 50), 100);
        t.add_disk(b"k", w(0, 50), 50);
        let stat = t.get(b"k", w(0, 50)).unwrap();
        assert_eq!(stat.disk_bytes, 150);
        assert_eq!(stat.disk_records, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn consume_removes() {
        let mut t = StatTable::new();
        t.add_disk(b"k", w(0, 50), 100);
        t.add_disk(b"k", w(50, 90), 10);
        assert!(t.consume(b"k", w(0, 50)).is_some());
        assert!(t.consume(b"k", w(0, 50)).is_none());
        assert_eq!(t.len(), 1);
        assert!(t.consume(b"k", w(50, 90)).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn selection_orders_by_ett_and_requires_disk() {
        let mut t = StatTable::new();
        let p = EttPredictor::SessionGap { gap: 10 };
        for (key, ts) in [(b"a", 30i64), (b"b", 10), (b"c", 20), (b"d", 5)] {
            t.observe_append(key, w(0, 100), ts, &p);
            t.add_disk(key, w(0, 100), 10);
        }
        // No disk data for `e`: never selected.
        t.observe_append(b"e", w(0, 100), 1, &p);
        let selected = t.select_soonest(2, None, |_, _| false);
        let keys: Vec<&[u8]> = selected.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"d" as &[u8], b"b"]);
        // Skip filter removes candidates.
        let selected = t.select_soonest(2, None, |k, _| k == b"d");
        let keys: Vec<&[u8]> = selected.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"b" as &[u8], b"c"]);
    }

    #[test]
    fn due_windows_extend_selection_beyond_n() {
        let mut t = StatTable::new();
        let p = EttPredictor::SessionGap { gap: 10 };
        for (key, ts) in [(b"a", 5i64), (b"b", 6), (b"c", 7), (b"d", 100)] {
            t.observe_append(key, w(0, 200), ts, &p);
            t.add_disk(key, w(0, 200), 10);
        }
        // n = 1, but everything due at ETT 17 (= 7 + gap) comes along.
        let selected = t.select_soonest(1, Some(17), |_, _| false);
        let keys: Vec<&[u8]> = selected.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c"]);
        // Without a due bound, only the n soonest are taken.
        let selected = t.select_soonest(1, None, |_, _| false);
        assert_eq!(selected.len(), 1);
    }

    #[test]
    fn unpredictable_windows_are_never_selected() {
        let mut t = StatTable::new();
        t.observe_append(b"k", w(0, 100), 5, &EttPredictor::Unpredictable);
        t.add_disk(b"k", w(0, 100), 10);
        assert!(t.select_soonest(10, None, |_, _| false).is_empty());
    }
}
