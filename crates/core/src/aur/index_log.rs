//! Index-log entries of the AUR store (paper §4.2, "On Disk Index Log
//! File").
//!
//! When the write buffer flushes, each `(key, window)` group becomes one
//! record in the global data log plus one entry in the append-only index
//! log. Index entries carry everything predictive batch read needs —
//! key, window metadata, the maximum tuple timestamp (for rebuilding
//! trigger-time estimates after recovery), and the data record's location.

use flowkv_common::codec::{put_len_prefixed, put_u64, put_varint_i64, put_varint_u64, Decoder};
use flowkv_common::error::Result;
use flowkv_common::types::{Timestamp, WindowId};

/// One entry of the on-disk index log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// The tuple key.
    pub key: Vec<u8>,
    /// The initial window boundary (fixed at window creation, §4.2).
    pub window: WindowId,
    /// Largest tuple timestamp in the flushed group.
    pub max_ts: Timestamp,
    /// Offset of the data record in the data log.
    pub offset: u64,
    /// On-disk length of the data record, header included.
    pub len: u64,
    /// Number of values inside the data record.
    pub count: u64,
}

impl IndexEntry {
    /// Serializes the entry into a log-record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Encodes the entry into `buf` (cleared first), letting hot write
    /// paths reuse one allocation across entries.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        put_len_prefixed(buf, &self.key);
        self.window.encode_to(buf);
        put_varint_i64(buf, self.max_ts);
        put_u64(buf, self.offset);
        put_u64(buf, self.len);
        put_varint_u64(buf, self.count);
    }

    /// Parses an entry from a log-record payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(payload);
        let key = dec.get_len_prefixed()?.to_vec();
        let window = WindowId::decode_from(&mut dec)?;
        let max_ts = dec.get_varint_i64()?;
        let offset = dec.get_u64()?;
        let len = dec.get_u64()?;
        let count = dec.get_varint_u64()?;
        Ok(IndexEntry {
            key,
            window,
            max_ts,
            offset,
            len,
            count,
        })
    }
}

/// A borrowed view of an index entry, for allocation-free scans.
#[derive(Clone, Copy, Debug)]
pub struct IndexEntryRef<'a> {
    /// The tuple key (borrowed from the record payload).
    pub key: &'a [u8],
    /// The initial window boundary.
    pub window: WindowId,
    /// Largest tuple timestamp in the flushed group.
    pub max_ts: Timestamp,
    /// Offset of the data record in the data log.
    pub offset: u64,
    /// On-disk length of the data record, header included.
    pub len: u64,
    /// Number of values inside the data record.
    pub count: u64,
}

impl<'a> IndexEntryRef<'a> {
    /// Parses an entry without copying the key.
    pub fn decode(payload: &'a [u8]) -> Result<Self> {
        let mut dec = Decoder::new(payload);
        let key = dec.get_len_prefixed()?;
        let window = WindowId::decode_from(&mut dec)?;
        let max_ts = dec.get_varint_i64()?;
        let offset = dec.get_u64()?;
        let len = dec.get_u64()?;
        let count = dec.get_varint_u64()?;
        Ok(IndexEntryRef {
            key,
            window,
            max_ts,
            offset,
            len,
            count,
        })
    }

    /// Converts into an owned [`IndexEntry`].
    pub fn to_owned(&self) -> IndexEntry {
        IndexEntry {
            key: self.key.to_vec(),
            window: self.window,
            max_ts: self.max_ts,
            offset: self.offset,
            len: self.len,
            count: self.count,
        }
    }
}

/// Encodes a flushed value group into a data-log record payload.
pub fn encode_values(values: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_values_into(&mut buf, values);
    buf
}

/// Encodes a data-log record into `buf` (cleared first); the flush path
/// reuses one buffer across groups instead of allocating per record.
pub fn encode_values_into(buf: &mut Vec<u8>, values: &[Vec<u8>]) {
    buf.clear();
    put_varint_u64(buf, values.len() as u64);
    for v in values {
        put_len_prefixed(buf, v);
    }
}

/// Decodes a data-log record payload back into its values.
pub fn decode_values(payload: &[u8]) -> Result<Vec<Vec<u8>>> {
    let mut dec = Decoder::new(payload);
    let n = dec.get_varint_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(dec.get_len_prefixed()?.to_vec());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrip() {
        let e = IndexEntry {
            key: b"user-42".to_vec(),
            window: WindowId::new(-10, 500),
            max_ts: 499,
            offset: 12345,
            len: 678,
            count: 9,
        };
        assert_eq!(IndexEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn borrowed_decode_matches_owned() {
        let e = IndexEntry {
            key: b"user".to_vec(),
            window: WindowId::new(3, 9),
            max_ts: 8,
            offset: 100,
            len: 20,
            count: 2,
        };
        let buf = e.encode();
        let r = IndexEntryRef::decode(&buf).unwrap();
        assert_eq!(r.to_owned(), e);
        assert_eq!(r.key, b"user");
    }

    #[test]
    fn values_roundtrip() {
        let values = vec![b"a".to_vec(), Vec::new(), vec![7u8; 300]];
        assert_eq!(decode_values(&encode_values(&values)).unwrap(), values);
    }

    #[test]
    fn truncated_entry_is_error() {
        let e = IndexEntry {
            key: b"k".to_vec(),
            window: WindowId::new(0, 1),
            max_ts: 0,
            offset: 0,
            len: 0,
            count: 0,
        };
        let buf = e.encode();
        assert!(IndexEntry::decode(&buf[..buf.len() - 1]).is_err());
    }
}
