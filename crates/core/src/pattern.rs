//! Store-pattern classification from operator semantics (paper §3.1).
//!
//! At application launch, FlowKV inspects the window operation's
//! aggregate-function and window-function signatures:
//!
//! - an incremental aggregate (Flink's `AggregateFunction`) means the
//!   operator reads and rewrites one intermediate aggregate per tuple →
//!   **RMW**, regardless of the window function (reads happen on every
//!   arrival, so read alignment is irrelevant);
//! - a full-list aggregate (Flink's `ProcessWindowFunction`) appends;
//!   the read side then depends on the window function: fixed and
//!   sliding windows trigger all keys together → **AAR**; session,
//!   count, and custom windows trigger per key → **AUR**. Custom window
//!   functions with unknown semantics are conservatively **AUR**.

use flowkv_common::backend::{AggregateKind, OperatorSemantics};

/// The three data-access patterns of window operations (paper §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Append and aligned read.
    Aar,
    /// Append and unaligned read.
    Aur,
    /// Read-modify-write.
    Rmw,
}

impl AccessPattern {
    /// Short lowercase name used in file layouts and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            AccessPattern::Aar => "aar",
            AccessPattern::Aur => "aur",
            AccessPattern::Rmw => "rmw",
        }
    }
}

impl std::fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Chooses the store pattern for an operator at launch time.
pub fn classify(semantics: &OperatorSemantics) -> AccessPattern {
    match semantics.aggregate {
        AggregateKind::Incremental => AccessPattern::Rmw,
        AggregateKind::FullList => {
            if semantics.window.is_aligned() {
                AccessPattern::Aar
            } else {
                AccessPattern::Aur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::backend::WindowKind;

    fn sem(aggregate: AggregateKind, window: WindowKind) -> OperatorSemantics {
        OperatorSemantics::new(aggregate, window)
    }

    #[test]
    fn incremental_is_always_rmw() {
        for window in [
            WindowKind::Fixed { size: 10 },
            WindowKind::Sliding { size: 10, slide: 5 },
            WindowKind::Session { gap: 10 },
            WindowKind::Global,
            WindowKind::Count { size: 10 },
            WindowKind::Custom,
        ] {
            assert_eq!(
                classify(&sem(AggregateKind::Incremental, window)),
                AccessPattern::Rmw,
                "window {window:?}"
            );
        }
    }

    #[test]
    fn full_list_splits_on_alignment() {
        assert_eq!(
            classify(&sem(
                AggregateKind::FullList,
                WindowKind::Fixed { size: 10 }
            )),
            AccessPattern::Aar
        );
        assert_eq!(
            classify(&sem(
                AggregateKind::FullList,
                WindowKind::Sliding { size: 10, slide: 5 }
            )),
            AccessPattern::Aar
        );
        assert_eq!(
            classify(&sem(
                AggregateKind::FullList,
                WindowKind::Session { gap: 9 }
            )),
            AccessPattern::Aur
        );
        assert_eq!(
            classify(&sem(AggregateKind::FullList, WindowKind::Count { size: 3 })),
            AccessPattern::Aur
        );
    }

    #[test]
    fn custom_windows_default_to_unaligned() {
        assert_eq!(
            classify(&sem(AggregateKind::FullList, WindowKind::Custom)),
            AccessPattern::Aur
        );
    }

    #[test]
    fn names() {
        assert_eq!(AccessPattern::Aar.to_string(), "aar");
        assert_eq!(AccessPattern::Aur.to_string(), "aur");
        assert_eq!(AccessPattern::Rmw.to_string(), "rmw");
    }
}
