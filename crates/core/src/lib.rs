//! FlowKV: a semantic-aware persistent store for stream-processing state.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Lee et al., *FlowKV: A Semantic-Aware Store for Large-Scale State
//! Management of Stream Processing Engines*, EuroSys '23). Unlike generic
//! KV stores, FlowKV exploits what the stream engine knows about **how**
//! and **when** window operators access their state:
//!
//! - At application launch, [`pattern::classify`] inspects the operator's
//!   aggregate-function and window-function signatures and selects one of
//!   three specialized stores (paper §3.1):
//!   [`aar::AarStore`] (append + aligned read),
//!   [`aur::AurStore`] (append + unaligned read), and
//!   [`rmw::RmwStore`] (read-modify-write).
//! - Each store deploys data layouts shaped by window boundaries rather
//!   than by keys alone (*leveraging how*, paper §4): per-window log
//!   files for AAR, a global data log plus an append-only index log for
//!   AUR, a hash index for RMW.
//! - The AUR store predicts each window's trigger time from window
//!   semantics and tuple timestamps ([`ett`]) and prefetches the windows
//!   about to trigger in one sequential batch (*leveraging when*,
//!   paper §4.2), integrating log compaction with that scan.
//! - [`partition::Partitioned`] deploys `m` independent store
//!   instances per physical operator so compactions stay small and
//!   latency spikes stay bounded (paper §3).
//!
//! The unified entry point is [`store::FlowKvStore`], a
//! [`flowkv_common::backend::StateBackend`] that a stream engine plugs in
//! exactly like the RocksDB- or FASTER-style baselines.
//!
//! # Examples
//!
//! ```
//! use flowkv::config::FlowKvConfig;
//! use flowkv::store::FlowKvStore;
//! use flowkv_common::backend::{AggregateKind, OperatorSemantics, StateBackend, WindowKind};
//! use flowkv_common::scratch::ScratchDir;
//! use flowkv_common::types::WindowId;
//!
//! let dir = ScratchDir::new("flowkv-doc").unwrap();
//! let semantics = OperatorSemantics::new(
//!     AggregateKind::FullList,
//!     WindowKind::Fixed { size: 1_000 },
//! );
//! let mut store =
//!     FlowKvStore::open(dir.path(), semantics, FlowKvConfig::default()).unwrap();
//! let w = WindowId::new(0, 1_000);
//! store.append(b"user", w, b"bid-17", 42).unwrap();
//! let chunk = store.get_window_chunk(w).unwrap().unwrap();
//! assert_eq!(chunk[0].0, b"user");
//! ```

pub mod aar;
pub mod aur;
pub mod config;
pub mod ett;
pub mod partition;
pub mod partitioner;
pub mod pattern;
pub mod probe;
pub mod rmw;
pub mod store;
pub mod tier;

pub use config::FlowKvConfig;
pub use ett::EttObservation;
pub use partitioner::KeyRangePartitioner;
pub use pattern::AccessPattern;
pub use store::{FlowKvFactory, FlowKvStore};
pub use tier::{TierConfig, TieredFactory, TieredStore};
