//! Sub-partitioning of one operator's state into `m` store instances
//! (paper §3).
//!
//! FlowKV splits each physical operator's key space `Kᵢ` into
//! `K_{i,0} … K_{i,m−1}` and deploys an independent store instance per
//! slice. Compaction then runs per instance on a fraction of the state,
//! which keeps individual compactions short and bounds latency spikes —
//! evaluated in the paper's tail-latency experiments (§6.2).

use flowkv_common::hash::partition_of;

/// A fixed set of store instances addressed by key hash.
pub struct Partitioned<S> {
    instances: Vec<S>,
}

impl<S> Partitioned<S> {
    /// Wraps `instances`; the count is the `m` of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty.
    pub fn new(instances: Vec<S>) -> Self {
        assert!(!instances.is_empty(), "need at least one store instance");
        Partitioned { instances }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Returns `false`; a partitioned store always has instances.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the instance responsible for `key`.
    pub fn index_of(&self, key: &[u8]) -> usize {
        partition_of(key, self.instances.len())
    }

    /// The instance responsible for `key`.
    pub fn for_key(&mut self, key: &[u8]) -> &mut S {
        let idx = self.index_of(key);
        &mut self.instances[idx]
    }

    /// The instance at `idx`.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut S> {
        self.instances.get_mut(idx)
    }

    /// Iterates all instances.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.instances.iter_mut()
    }

    /// Iterates all instances immutably.
    pub fn iter(&self) -> impl Iterator<Item = &S> {
        self.instances.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let p = Partitioned::new(vec![0u8; 4]);
        for key in 0..100u32 {
            let a = p.index_of(&key.to_le_bytes());
            let b = p.index_of(&key.to_le_bytes());
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn for_key_returns_routed_instance() {
        let mut p = Partitioned::new(vec![0u32, 1, 2]);
        let idx = p.index_of(b"some-key");
        assert_eq!(*p.for_key(b"some-key"), idx as u32);
    }

    #[test]
    fn keys_spread_across_instances() {
        let p = Partitioned::new(vec![(); 4]);
        let mut seen = [false; 4];
        for key in 0..64u32 {
            seen[p.index_of(&key.to_le_bytes())] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some instance never used: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_partitioning_panics() {
        let _: Partitioned<u8> = Partitioned::new(vec![]);
    }
}
