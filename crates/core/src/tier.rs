//! Two-tier hot/cold state layout behind the [`StateBackend`] seam.
//!
//! [`TieredStore`] wraps *any* state backend: the wrapped store is the
//! pinned hot tier holding the windows most likely to trigger next,
//! while sealed cold windows are demoted into compressed columnar blocks
//! ([`flowkv_common::columnar`]) appended to a single cold log on the
//! [`Vfs`] seam. The store already knows the schema — pattern, window,
//! key — so demotion consumes the hot tier with the same pattern-legal
//! calls the engine would issue (AAR window drains, AUR per-key takes,
//! RMW aggregate takes), and promotion replays cold rows *ahead of* any
//! hotter rows appended since, preserving per-key append order exactly.
//!
//! Key mechanics:
//!
//! - **Demotion** triggers on write paths whenever the wrapper-tracked
//!   hot footprint exceeds [`TierConfig::hot_bytes`] and always demotes
//!   the coldest (earliest-ending) windows first. `hot_bytes = 0` is the
//!   pathological forced-demotion cell of the differential tier harness:
//!   every write immediately seals to a cold block.
//! - **Promotion** happens lazily on the first access that touches a
//!   window with cold blocks. Block reads route through the background
//!   I/O ring when one is configured ([`OperatorContext::io`]), and
//!   [`TieredStore::advance_prefetch`] pre-submits reads for cold
//!   windows whose end falls within the prefetch horizon so the read
//!   overlaps compute.
//! - **Compaction** rewrites the cold log sequentially once promoted
//!   (dead) blocks dominate, exactly like the MSA scan it mirrors:
//!   surviving blocks are copied in window order to a fresh log which
//!   atomically replaces the old one.
//! - **Checkpoints** seal every hot window into the cold tier first, so
//!   a snapshot is the inner store's (empty) checkpoint plus the cold
//!   log and a CRC-guarded `TIERMETA` index — and restore is the exact
//!   reverse. [`StateBackend::extract_range`] / `inject_entries` merge
//!   both tiers (cold rows first), so rescaling migrates cold state
//!   losslessly.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::backend::{
    AggregateKind, KeyFilter, OperatorContext, StateBackend, StateBackendFactory, StateEntry,
    WindowChunk,
};
use flowkv_common::codec::{self, Decoder};
use flowkv_common::columnar::{self, BlockKind, ColdRow};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::ioring::{IoPolicy, IoRing};
use flowkv_common::metrics::{OpCategory, StoreMetrics};
use flowkv_common::registry::{StateView, ViewValue};
use flowkv_common::telemetry::{Counter, Gauge, MetricRegistry, Telemetry};
use flowkv_common::types::{Timestamp, WindowId};
use flowkv_common::vfs::{StdVfs, Vfs, VfsFile};

/// Magic prefix of the `TIERMETA` checkpoint sidecar.
const META_MAGIC: [u8; 4] = *b"FKTM";
/// Current `TIERMETA` format version.
const META_VERSION: u8 = 1;
/// Ring routing tag for tier block reads.
const TIER_RING_TAG: u64 = 0xC0_1D;
/// Name of the cold log inside the tier's partition directory.
const COLD_LOG: &str = "cold.log";
/// Checkpoint file names.
const CKPT_COLD: &str = "COLDLOG";
const CKPT_META: &str = "TIERMETA";
/// Subdirectory of a checkpoint holding the inner store's snapshot.
const CKPT_HOT: &str = "hot";

/// Tuning knobs of the tiered layout.
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Hot-tier budget in bytes (keys + values + 8-byte timestamps of
    /// state resident in the wrapped store). Writes that push the
    /// footprint past the budget trigger a demotion wave. `0` demotes
    /// everything on every write — the harness's pathological cell.
    pub hot_bytes: usize,
    /// Dictionary-encode the value column of cold blocks (keys and
    /// timestamps are always dictionary/delta-encoded).
    pub compress: bool,
    /// Cold-log compaction trigger: dead bytes must reach this floor...
    pub compact_min_dead_bytes: u64,
    /// ...and this fraction of the log before a rewrite runs.
    pub compact_min_dead_ratio: f64,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            hot_bytes: 32 << 20,
            compress: true,
            compact_min_dead_bytes: 64 << 10,
            compact_min_dead_ratio: 0.5,
        }
    }
}

impl TierConfig {
    /// A config with the given hot budget and defaults elsewhere.
    pub fn new(hot_bytes: usize) -> Self {
        TierConfig {
            hot_bytes,
            ..TierConfig::default()
        }
    }

    /// Checks every knob is inside its legal range.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.compact_min_dead_ratio) {
            return Err(StoreError::InvalidConfig {
                param: "compact_min_dead_ratio",
                detail: format!("must be within [0, 1], got {}", self.compact_min_dead_ratio),
            });
        }
        Ok(())
    }
}

/// Location of one cold block inside the cold log.
#[derive(Clone, Copy, Debug)]
struct BlockRef {
    /// Offset of the block payload (past the 4-byte length frame).
    offset: u64,
    /// Payload length in bytes.
    len: u32,
    /// Rows inside, for accounting.
    rows: u32,
}

/// Per-key hot-tier bookkeeping.
#[derive(Default)]
struct KeyTrack {
    /// Append timestamp per resident row (one entry for aggregates).
    ts: Vec<Timestamp>,
    /// Bytes this key's rows charge against the hot budget.
    bytes: usize,
}

/// Hot-tier bookkeeping of one window: which keys hold live rows in the
/// wrapped store, in first-append order (the demotion scan order).
#[derive(Default)]
struct HotWindow {
    keys: HashMap<Vec<u8>, KeyTrack>,
    order: Vec<Vec<u8>>,
    bytes: usize,
}

/// `tier_*` telemetry family (registered on the job hub when present).
struct TierCounters {
    demotions: Arc<Counter>,
    demoted_rows: Arc<Counter>,
    promotions: Arc<Counter>,
    promoted_rows: Arc<Counter>,
    cold_bytes_written: Arc<Counter>,
    uncompressed_bytes: Arc<Counter>,
    cold_blocks: Arc<Counter>,
    compactions: Arc<Counter>,
    compaction_reclaimed: Arc<Counter>,
    prefetch_submitted: Arc<Counter>,
    prefetch_hits: Arc<Counter>,
    prefetch_wasted: Arc<Counter>,
    hot_resident: Arc<Gauge>,
    cold_live: Arc<Gauge>,
    cold_dead: Arc<Gauge>,
}

impl TierCounters {
    fn new(telemetry: Option<&Arc<Telemetry>>) -> Self {
        // Without a hub the counters still exist (cheap atomics) so the
        // store logic never branches on instrumentation.
        let local;
        let reg = match telemetry {
            Some(t) => t.registry(),
            None => {
                local = MetricRegistry::new();
                &local
            }
        };
        TierCounters {
            demotions: reg.counter("tier_demotions_total"),
            demoted_rows: reg.counter("tier_demoted_rows_total"),
            promotions: reg.counter("tier_promotions_total"),
            promoted_rows: reg.counter("tier_promoted_rows_total"),
            cold_bytes_written: reg.counter("tier_cold_bytes_written_total"),
            uncompressed_bytes: reg.counter("tier_uncompressed_bytes_total"),
            cold_blocks: reg.counter("tier_cold_blocks_total"),
            compactions: reg.counter("tier_compactions_total"),
            compaction_reclaimed: reg.counter("tier_compaction_reclaimed_bytes_total"),
            prefetch_submitted: reg.counter("tier_prefetch_submitted_total"),
            prefetch_hits: reg.counter("tier_prefetch_hits_total"),
            prefetch_wasted: reg.counter("tier_prefetch_wasted_total"),
            hot_resident: reg.gauge("tier_hot_resident_bytes"),
            cold_live: reg.gauge("tier_cold_live_bytes"),
            cold_dead: reg.gauge("tier_cold_dead_bytes"),
        }
    }
}

/// A [`StateBackend`] that splits state between a wrapped hot store and
/// a compressed columnar cold log. See the module docs for the layout.
pub struct TieredStore {
    inner: Box<dyn StateBackend>,
    cfg: TierConfig,
    aggregate: AggregateKind,
    aligned: bool,
    vfs: Arc<dyn Vfs>,
    cold_dir: PathBuf,
    cold_path: PathBuf,
    cold_file: Option<Box<dyn VfsFile>>,
    cold_len: u64,
    /// Cold blocks per window, in demotion (append) order.
    index: BTreeMap<WindowId, Vec<BlockRef>>,
    live_bytes: u64,
    dead_bytes: u64,
    hot: BTreeMap<WindowId, HotWindow>,
    hot_bytes: usize,
    ring: Option<IoRing>,
    policy: Option<IoPolicy>,
    /// In-flight prefetch submissions: ring id → (window, estimated bytes).
    inflight: HashMap<u64, (WindowId, u64)>,
    /// Completed prefetches awaiting promotion: raw block payloads.
    prefetched: HashMap<WindowId, Vec<Vec<u8>>>,
    prefetched_bytes: u64,
    counters: TierCounters,
    store_metrics: Arc<StoreMetrics>,
}

impl TieredStore {
    /// Wraps `inner` for the operator of `ctx`, keeping cold blocks in a
    /// sibling `tier/` tree so the inner store's directory scans never
    /// see foreign files.
    pub fn new(
        inner: Box<dyn StateBackend>,
        ctx: &OperatorContext,
        cfg: TierConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        cfg.validate()?;
        let cold_dir = ctx
            .data_dir
            .join("tier")
            .join(&ctx.operator)
            .join(format!("p{}", ctx.partition));
        vfs.create_dir_all(&cold_dir)
            .map_err(|e| StoreError::io_at("tier dir", &cold_dir, e))?;
        let cold_path = cold_dir.join(COLD_LOG);
        let policy = ctx.io.clone().filter(|p| p.threads > 0);
        let ring = policy.as_ref().map(|p| {
            IoRing::with_telemetry(
                Arc::clone(&vfs),
                p.threads,
                p.shuffle_seed,
                ctx.telemetry.clone(),
            )
        });
        let store_metrics = inner.metrics();
        Ok(TieredStore {
            inner,
            aggregate: ctx.semantics.aggregate,
            aligned: ctx.semantics.window.is_aligned(),
            vfs,
            cold_dir,
            cold_path,
            cold_file: None,
            cold_len: 0,
            index: BTreeMap::new(),
            live_bytes: 0,
            dead_bytes: 0,
            hot: BTreeMap::new(),
            hot_bytes: 0,
            ring,
            policy,
            inflight: HashMap::new(),
            prefetched: HashMap::new(),
            prefetched_bytes: 0,
            counters: TierCounters::new(ctx.telemetry.as_ref()),
            store_metrics,
            cfg,
        })
    }

    fn io_err(&self, context: &'static str, e: std::io::Error) -> StoreError {
        StoreError::io_at(context, &self.cold_path, e)
    }

    // ---- hot-tier bookkeeping -------------------------------------------

    fn track_append(&mut self, key: &[u8], window: WindowId, value_len: usize, ts: Timestamp) {
        let hw = self.hot.entry(window).or_default();
        if !hw.keys.contains_key(key) {
            hw.order.push(key.to_vec());
        }
        let kt = hw.keys.entry(key.to_vec()).or_default();
        let cost = key.len() + value_len + 8;
        kt.ts.push(ts);
        kt.bytes += cost;
        hw.bytes += cost;
        self.hot_bytes += cost;
    }

    fn track_put(&mut self, key: &[u8], window: WindowId, value_len: usize, ts: Timestamp) {
        let hw = self.hot.entry(window).or_default();
        let cost = key.len() + value_len + 8;
        if let Some(kt) = hw.keys.get_mut(key) {
            hw.bytes = hw.bytes - kt.bytes + cost;
            self.hot_bytes = self.hot_bytes - kt.bytes + cost;
            kt.bytes = cost;
            kt.ts.clear();
            kt.ts.push(ts);
        } else {
            hw.order.push(key.to_vec());
            hw.keys.insert(
                key.to_vec(),
                KeyTrack {
                    ts: vec![ts],
                    bytes: cost,
                },
            );
            hw.bytes += cost;
            self.hot_bytes += cost;
        }
    }

    fn untrack_key(&mut self, key: &[u8], window: WindowId) {
        if let Some(hw) = self.hot.get_mut(&window) {
            if let Some(kt) = hw.keys.remove(key) {
                hw.bytes -= kt.bytes;
                self.hot_bytes -= kt.bytes;
                hw.order.retain(|k| k != key);
            }
            if hw.keys.is_empty() {
                self.hot.remove(&window);
            }
        }
    }

    fn untrack_window(&mut self, window: WindowId) {
        if let Some(hw) = self.hot.remove(&window) {
            self.hot_bytes -= hw.bytes;
        }
    }

    fn update_gauges(&self) {
        self.counters.hot_resident.set(self.hot_bytes as i64);
        self.counters.cold_live.set(self.live_bytes as i64);
        self.counters.cold_dead.set(self.dead_bytes as i64);
    }

    // ---- cold log I/O ---------------------------------------------------

    fn open_cold_for_append(&mut self) -> Result<()> {
        if self.cold_file.is_some() {
            return Ok(());
        }
        let file = if self.vfs.exists(&self.cold_path) {
            self.vfs.open_rw(&self.cold_path)
        } else {
            self.vfs.create(&self.cold_path)
        }
        .map_err(|e| StoreError::io_at("tier cold log open", &self.cold_path, e))?;
        self.cold_len = file
            .len()
            .map_err(|e| StoreError::io_at("tier cold log len", &self.cold_path, e))?;
        self.cold_file = Some(file);
        Ok(())
    }

    fn append_block(&mut self, window: WindowId, blob: &[u8], rows: usize) -> Result<()> {
        self.open_cold_for_append()?;
        let mut framed = Vec::with_capacity(blob.len() + 4);
        codec::put_u32(&mut framed, blob.len() as u32);
        framed.extend_from_slice(blob);
        let file = self.cold_file.as_mut().expect("opened above");
        file.write_all_at(&framed, self.cold_len)
            .map_err(|e| StoreError::io_at("tier cold log append", &self.cold_path, e))?;
        let offset = self.cold_len + 4;
        self.cold_len += framed.len() as u64;
        self.index.entry(window).or_default().push(BlockRef {
            offset,
            len: blob.len() as u32,
            rows: rows as u32,
        });
        self.live_bytes += blob.len() as u64;
        self.counters.cold_blocks.inc();
        self.counters.cold_bytes_written.add(blob.len() as u64);
        self.store_metrics.add_bytes_written(framed.len() as u64);
        Ok(())
    }

    fn read_blocks_sync(&self, refs: &[BlockRef]) -> Result<Vec<Vec<u8>>> {
        let file = self
            .vfs
            .open_read(&self.cold_path)
            .map_err(|e| self.io_err("tier cold log read", e))?;
        let mut out = Vec::with_capacity(refs.len());
        for r in refs {
            let mut buf = vec![0u8; r.len as usize];
            file.read_exact_at(&mut buf, r.offset)
                .map_err(|e| self.io_err("tier cold block read", e))?;
            out.push(buf);
        }
        Ok(out)
    }

    /// Ring job reading the given block payloads from the cold log.
    fn block_read_job(path: PathBuf, refs: Vec<BlockRef>) -> flowkv_common::ioring::IoJob {
        Box::new(move |vfs: &Arc<dyn Vfs>| {
            let file = vfs.open_read(&path)?;
            let mut out: Vec<Vec<u8>> = Vec::with_capacity(refs.len());
            for r in &refs {
                let mut buf = vec![0u8; r.len as usize];
                file.read_exact_at(&mut buf, r.offset)?;
                out.push(buf);
            }
            Ok(Box::new(out) as Box<dyn Any + Send>)
        })
    }

    /// Fetches a cold window's block payloads: from the prefetch buffer,
    /// a pending submission, or (on a miss) a fresh read routed through
    /// the ring when one is configured.
    fn fetch_window_blobs(&mut self, window: WindowId, refs: &[BlockRef]) -> Result<Vec<Vec<u8>>> {
        if let Some(mut blobs) = self.prefetched.remove(&window) {
            let bytes: u64 = blobs.iter().map(|b| b.len() as u64).sum();
            self.prefetched_bytes = self.prefetched_bytes.saturating_sub(bytes);
            self.counters.prefetch_hits.inc();
            self.store_metrics.add_prefetch_hit();
            // A prefetch covers the window's blocks *as of submission*;
            // blocks demoted since then sit past that prefix and still
            // need a read (block order per window never changes, so the
            // prefetched blobs are exactly refs[..blobs.len()]).
            if blobs.len() < refs.len() {
                let tail = self.read_blocks_sync(&refs[blobs.len()..])?;
                self.store_metrics
                    .add_bytes_read(tail.iter().map(|b| b.len() as u64).sum());
                blobs.extend(tail);
            }
            return Ok(blobs);
        }
        let pending = self
            .inflight
            .iter()
            .find(|(_, (w, _))| *w == window)
            .map(|(id, _)| *id);
        if let Some(id) = pending {
            self.inflight.remove(&id);
            let ring = self.ring.as_ref().expect("inflight implies ring");
            match ring.wait(id).into_result() {
                Ok(payload) => {
                    self.counters.prefetch_hits.inc();
                    self.store_metrics.add_prefetch_hit();
                    let mut blobs = *payload
                        .downcast::<Vec<Vec<u8>>>()
                        .expect("tier prefetch payload");
                    let bytes: u64 = blobs.iter().map(|b| b.len() as u64).sum();
                    self.store_metrics.add_bytes_read(bytes);
                    // Same prefix rule as the prefetch-buffer hit above.
                    if blobs.len() < refs.len() {
                        let tail = self.read_blocks_sync(&refs[blobs.len()..])?;
                        self.store_metrics
                            .add_bytes_read(tail.iter().map(|b| b.len() as u64).sum());
                        blobs.extend(tail);
                    }
                    return Ok(blobs);
                }
                // A failed background read just means the window promotes
                // from a fresh read below.
                Err(_) => self.counters.prefetch_wasted.inc(),
            }
        } else {
            self.store_metrics.add_prefetch_miss();
        }
        let blobs = if let Some(ring) = &self.ring {
            // Route even miss reads through the ring so cold I/O shares
            // the fault surface and telemetry of background reads.
            let id = ring.submit(
                TIER_RING_TAG,
                Self::block_read_job(self.cold_path.clone(), refs.to_vec()),
            );
            let payload = ring
                .wait(id)
                .into_result()
                .map_err(|e| self.io_err("tier promote read", e))?;
            *payload
                .downcast::<Vec<Vec<u8>>>()
                .expect("tier promote payload")
        } else {
            self.read_blocks_sync(refs)?
        };
        let bytes: u64 = blobs.iter().map(|b| b.len() as u64).sum();
        self.store_metrics.add_bytes_read(bytes);
        Ok(blobs)
    }

    /// Resolves every in-flight prefetch (before compaction moves the
    /// offsets they were submitted against).
    fn settle_inflight(&mut self) {
        if self.ring.is_none() {
            return;
        }
        let pending = std::mem::take(&mut self.inflight);
        let mut landed: Vec<(WindowId, Vec<Vec<u8>>)> = Vec::new();
        {
            let ring = self.ring.as_ref().expect("checked above");
            for (id, (window, _)) in pending {
                match ring.wait(id).into_result() {
                    Ok(payload) => {
                        let blobs = *payload
                            .downcast::<Vec<Vec<u8>>>()
                            .expect("tier prefetch payload");
                        landed.push((window, blobs));
                    }
                    Err(_) => self.counters.prefetch_wasted.inc(),
                }
            }
        }
        for (window, blobs) in landed {
            self.install_prefetch(window, blobs);
        }
    }

    fn install_prefetch(&mut self, window: WindowId, blobs: Vec<Vec<u8>>) {
        if !self.index.contains_key(&window) {
            // Promoted (or compacted away) while the read was in flight.
            self.counters.prefetch_wasted.inc();
            self.store_metrics.add_prefetch_eviction();
            return;
        }
        self.prefetched_bytes += blobs.iter().map(|b| b.len() as u64).sum::<u64>();
        self.prefetched.insert(window, blobs);
    }

    // ---- demotion -------------------------------------------------------

    /// Consumes every live hot row of `window` from the inner store, in
    /// the pattern-legal way, returning rows in per-key append order.
    fn drain_hot_rows(&mut self, window: WindowId, track: &HotWindow) -> Result<Vec<ColdRow>> {
        let mut rows = Vec::new();
        match self.aggregate {
            AggregateKind::Incremental => {
                for key in &track.order {
                    if let Some(value) = self.inner.take_aggregate(key, window)? {
                        let ts = track
                            .keys
                            .get(key)
                            .and_then(|kt| kt.ts.last().copied())
                            .unwrap_or(window.start);
                        rows.push(ColdRow {
                            key: key.clone(),
                            ts,
                            value,
                        });
                    }
                }
            }
            AggregateKind::FullList if self.aligned => {
                // AAR stores only expose the whole-window drain.
                let mut per_key: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
                while let Some(chunk) = self.inner.get_window_chunk(window)? {
                    for (key, values) in chunk {
                        per_key.entry(key).or_default().extend(values);
                    }
                }
                for key in &track.order {
                    let values = per_key.remove(key).unwrap_or_default();
                    let kt = track.keys.get(key);
                    for (i, value) in values.into_iter().enumerate() {
                        let ts = kt
                            .and_then(|kt| kt.ts.get(i).copied())
                            .unwrap_or(window.start);
                        rows.push(ColdRow {
                            key: key.clone(),
                            ts,
                            value,
                        });
                    }
                }
                // Rows the tracker missed (none in a healthy run) still
                // demote, deterministically ordered.
                let mut rest: Vec<_> = per_key.into_iter().collect();
                rest.sort();
                for (key, values) in rest {
                    for value in values {
                        rows.push(ColdRow {
                            key: key.clone(),
                            ts: window.start,
                            value,
                        });
                    }
                }
            }
            AggregateKind::FullList => {
                for key in &track.order {
                    let values = self.inner.take_values(key, window)?;
                    let kt = track.keys.get(key);
                    for (i, value) in values.into_iter().enumerate() {
                        let ts = kt
                            .and_then(|kt| kt.ts.get(i).copied())
                            .unwrap_or(window.start);
                        rows.push(ColdRow {
                            key: key.clone(),
                            ts,
                            value,
                        });
                    }
                }
            }
        }
        Ok(rows)
    }

    fn block_kind(&self) -> BlockKind {
        match self.aggregate {
            AggregateKind::Incremental => BlockKind::Aggregates,
            AggregateKind::FullList => BlockKind::Values,
        }
    }

    /// Seals one window out of the hot tier into a cold block.
    fn demote_window(&mut self, window: WindowId) -> Result<()> {
        let Some(track) = self.hot.remove(&window) else {
            return Ok(());
        };
        self.hot_bytes -= track.bytes;
        let rows = self.drain_hot_rows(window, &track)?;
        if rows.is_empty() {
            return Ok(());
        }
        let blob = columnar::encode_block(window, self.block_kind(), &rows, self.cfg.compress);
        self.append_block(window, &blob, rows.len())?;
        self.counters.demotions.inc();
        self.counters.demoted_rows.add(rows.len() as u64);
        self.counters
            .uncompressed_bytes
            .add(columnar::uncompressed_size(&rows) as u64);
        // The hot store just tombstoned this whole range; let it compact
        // while the blocks are warm.
        self.inner.demoted_hint(window)?;
        Ok(())
    }

    /// Demotes coldest-first until the hot tier fits `budget`.
    fn demote_to_budget(&mut self, budget: usize) -> Result<()> {
        if self.hot_bytes <= budget {
            return Ok(());
        }
        let _t = self.store_metrics.timer(OpCategory::Compaction);
        let mut windows: Vec<WindowId> = self.hot.keys().copied().collect();
        windows.sort_by_key(|w| (w.end, w.start));
        for window in windows {
            if self.hot_bytes <= budget {
                break;
            }
            self.demote_window(window)?;
        }
        self.maybe_compact()?;
        self.update_gauges();
        Ok(())
    }

    fn maybe_demote(&mut self) -> Result<()> {
        if self.hot_bytes > self.cfg.hot_bytes {
            self.demote_to_budget(self.cfg.hot_bytes)?;
        }
        Ok(())
    }

    // ---- promotion ------------------------------------------------------

    /// Decodes `window`'s cold blocks and replays them into the inner
    /// store *ahead of* any hotter rows appended since demotion, so
    /// per-key append order is exactly what a hot-only run would hold.
    fn promote_window(&mut self, window: WindowId) -> Result<()> {
        let Some(refs) = self.index.remove(&window) else {
            return Ok(());
        };
        let blobs = match self.fetch_window_blobs(window, &refs) {
            Ok(blobs) => blobs,
            Err(e) => {
                // The window's blocks are still on disk; put the refs
                // back so a recovery retry can promote again.
                self.index.insert(window, refs);
                return Err(e);
            }
        };
        let freed: u64 = refs.iter().map(|r| u64::from(r.len)).sum();
        self.live_bytes = self.live_bytes.saturating_sub(freed);
        self.dead_bytes += freed;
        let mut cold_rows: Vec<ColdRow> = Vec::new();
        for blob in &blobs {
            let block = columnar::decode_block(blob)?;
            if block.window != window {
                return Err(StoreError::corruption(
                    &self.cold_path,
                    0,
                    format!(
                        "cold block window {:?} indexed under {:?}",
                        block.window, window
                    ),
                ));
            }
            cold_rows.extend(block.rows);
        }
        let promoted = cold_rows.len();
        match self.aggregate {
            AggregateKind::Incremental => {
                // Within cold blocks a later row supersedes an earlier
                // one; a live hot aggregate supersedes them all.
                let mut order: Vec<Vec<u8>> = Vec::new();
                let mut last: HashMap<Vec<u8>, ColdRow> = HashMap::new();
                for row in cold_rows {
                    if !last.contains_key(&row.key) {
                        order.push(row.key.clone());
                    }
                    last.insert(row.key.clone(), row);
                }
                for key in order {
                    let row = last.remove(&key).expect("inserted above");
                    let hot_newer = self
                        .hot
                        .get(&window)
                        .is_some_and(|hw| hw.keys.contains_key(&key));
                    if !hot_newer {
                        self.inner.put_aggregate(&key, window, &row.value)?;
                        self.track_put(&key, window, row.value.len(), row.ts);
                    }
                }
            }
            AggregateKind::FullList => {
                // Drain the hotter rows out, then replay cold-first.
                let mut hot_rows = Vec::new();
                if let Some(track) = self.hot.remove(&window) {
                    self.hot_bytes -= track.bytes;
                    hot_rows = self.drain_hot_rows(window, &track)?;
                }
                for row in cold_rows.into_iter().chain(hot_rows) {
                    self.inner.append(&row.key, window, &row.value, row.ts)?;
                    self.track_append(&row.key, window, row.value.len(), row.ts);
                }
            }
        }
        self.counters.promotions.inc();
        self.counters.promoted_rows.add(promoted as u64);
        self.maybe_compact()?;
        self.update_gauges();
        Ok(())
    }

    /// Promotes `window` if it has cold blocks; cheap no-op otherwise.
    fn ensure_hot(&mut self, window: WindowId) -> Result<()> {
        if self.index.contains_key(&window) {
            self.promote_window(window)?;
        }
        Ok(())
    }

    // ---- compaction -----------------------------------------------------

    fn maybe_compact(&mut self) -> Result<()> {
        let total = self.live_bytes + self.dead_bytes;
        if self.dead_bytes < self.cfg.compact_min_dead_bytes
            || (self.dead_bytes as f64) < self.cfg.compact_min_dead_ratio * total as f64
        {
            return Ok(());
        }
        self.compact()
    }

    /// Rewrites the cold log keeping only live blocks, in one sequential
    /// window-ordered scan (the MSA idiom: reorganize while streaming).
    fn compact(&mut self) -> Result<()> {
        let _t = self.store_metrics.timer(OpCategory::Compaction);
        // In-flight prefetch reads target the old offsets; settle them
        // first (their payloads stay valid — content does not move).
        self.settle_inflight();
        let tmp = self.cold_dir.join("cold.log.tmp");
        let out = self
            .vfs
            .create(&tmp)
            .map_err(|e| StoreError::io_at("tier compact create", &tmp, e))?;
        let src = if self.index.is_empty() {
            None
        } else {
            Some(
                self.vfs
                    .open_read(&self.cold_path)
                    .map_err(|e| self.io_err("tier compact read", e))?,
            )
        };
        let mut new_index: BTreeMap<WindowId, Vec<BlockRef>> = BTreeMap::new();
        let mut new_len = 0u64;
        for (window, refs) in &self.index {
            for r in refs {
                let src = src.as_ref().expect("index implies source");
                let mut blob = vec![0u8; r.len as usize];
                src.read_exact_at(&mut blob, r.offset)
                    .map_err(|e| self.io_err("tier compact read", e))?;
                let mut framed = Vec::with_capacity(blob.len() + 4);
                codec::put_u32(&mut framed, blob.len() as u32);
                framed.extend_from_slice(&blob);
                out.write_all_at(&framed, new_len)
                    .map_err(|e| StoreError::io_at("tier compact write", &tmp, e))?;
                new_index.entry(*window).or_default().push(BlockRef {
                    offset: new_len + 4,
                    len: r.len,
                    rows: r.rows,
                });
                new_len += framed.len() as u64;
                self.store_metrics.add_bytes_read(blob.len() as u64);
                self.store_metrics.add_bytes_written(framed.len() as u64);
            }
        }
        let mut out = out;
        out.sync_data()
            .map_err(|e| StoreError::io_at("tier compact sync", &tmp, e))?;
        drop(out);
        drop(src);
        self.cold_file = None;
        self.vfs
            .rename(&tmp, &self.cold_path)
            .map_err(|e| self.io_err("tier compact rename", e))?;
        self.index = new_index;
        self.cold_len = new_len;
        let reclaimed = self.dead_bytes;
        self.dead_bytes = 0;
        self.counters.compactions.inc();
        self.counters.compaction_reclaimed.add(reclaimed);
        self.store_metrics.add_compaction();
        Ok(())
    }

    // ---- cold-state reads (non-consuming) -------------------------------

    /// Decodes every cold row of every window, without consuming any
    /// state — the scan `extract_range` and `read_view` merge from.
    fn scan_cold_rows(&self) -> Result<Vec<(WindowId, Vec<ColdRow>)>> {
        if self.index.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(self.index.len());
        let file = self
            .vfs
            .open_read(&self.cold_path)
            .map_err(|e| self.io_err("tier cold scan", e))?;
        for (window, refs) in &self.index {
            let mut rows = Vec::new();
            for r in refs {
                let mut blob = vec![0u8; r.len as usize];
                file.read_exact_at(&mut blob, r.offset)
                    .map_err(|e| self.io_err("tier cold scan", e))?;
                rows.extend(columnar::decode_block(&blob)?.rows);
            }
            out.push((*window, rows));
        }
        Ok(out)
    }

    // ---- checkpoint metadata --------------------------------------------

    fn encode_meta(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&META_MAGIC);
        buf.push(META_VERSION);
        codec::put_varint_u64(&mut buf, self.cold_len);
        codec::put_varint_u64(&mut buf, self.live_bytes);
        codec::put_varint_u64(&mut buf, self.dead_bytes);
        codec::put_varint_u64(&mut buf, self.index.len() as u64);
        for (window, refs) in &self.index {
            codec::put_varint_i64(&mut buf, window.start);
            codec::put_varint_i64(&mut buf, window.end);
            codec::put_varint_u64(&mut buf, refs.len() as u64);
            for r in refs {
                codec::put_varint_u64(&mut buf, r.offset);
                codec::put_varint_u64(&mut buf, u64::from(r.len));
                codec::put_varint_u64(&mut buf, u64::from(r.rows));
            }
        }
        let crc = codec::crc32(&buf[META_MAGIC.len()..]);
        codec::put_u32(&mut buf, crc);
        buf
    }

    fn decode_meta(&mut self, bytes: &[u8], path: &Path) -> Result<()> {
        let corrupt =
            |offset: usize, detail: String| StoreError::corruption(path, offset as u64, detail);
        if bytes.len() < META_MAGIC.len() + 1 + 4 {
            return Err(StoreError::UnexpectedEof { what: "TIERMETA" });
        }
        if bytes[..META_MAGIC.len()] != META_MAGIC {
            return Err(corrupt(0, "bad TIERMETA magic".to_string()));
        }
        let body = &bytes[META_MAGIC.len()..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let actual = codec::crc32(body);
        if stored != actual {
            return Err(corrupt(
                bytes.len() - 4,
                "TIERMETA CRC mismatch".to_string(),
            ));
        }
        let mut dec = Decoder::new(body);
        let version = dec.take(1, "TIERMETA version")?[0];
        if version != META_VERSION {
            return Err(corrupt(
                4,
                format!("unsupported TIERMETA version {version}"),
            ));
        }
        self.cold_len = dec.get_varint_u64()?;
        self.live_bytes = dec.get_varint_u64()?;
        self.dead_bytes = dec.get_varint_u64()?;
        let windows = dec.get_varint_u64()? as usize;
        let mut index = BTreeMap::new();
        for _ in 0..windows {
            let start = dec.get_varint_i64()?;
            let end = dec.get_varint_i64()?;
            if start > end {
                return Err(corrupt(
                    dec.position(),
                    format!("inverted TIERMETA window [{start}, {end})"),
                ));
            }
            let n = dec.get_varint_u64()? as usize;
            let mut refs = Vec::with_capacity(n.min(body.len()));
            for _ in 0..n {
                refs.push(BlockRef {
                    offset: dec.get_varint_u64()?,
                    len: dec.get_varint_u64()? as u32,
                    rows: dec.get_varint_u64()? as u32,
                });
            }
            index.insert(WindowId::new(start, end), refs);
        }
        self.index = index;
        Ok(())
    }
}

impl StateBackend for TieredStore {
    fn append(&mut self, key: &[u8], window: WindowId, value: &[u8], ts: Timestamp) -> Result<()> {
        // No promotion needed: cold rows are strictly older, and the
        // merge happens on the read side.
        self.inner.append(key, window, value, ts)?;
        self.track_append(key, window, value.len(), ts);
        self.maybe_demote()
    }

    fn get_window_chunk(&mut self, window: WindowId) -> Result<Option<WindowChunk>> {
        self.ensure_hot(window)?;
        // The engine is consuming this window now; whatever it drains is
        // gone from the hot tier.
        self.untrack_window(window);
        self.inner.get_window_chunk(window)
    }

    fn take_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        self.ensure_hot(window)?;
        self.untrack_key(key, window);
        self.inner.take_values(key, window)
    }

    fn peek_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        self.ensure_hot(window)?;
        self.inner.peek_values(key, window)
    }

    fn take_aggregate(&mut self, key: &[u8], window: WindowId) -> Result<Option<Vec<u8>>> {
        self.ensure_hot(window)?;
        self.untrack_key(key, window);
        self.inner.take_aggregate(key, window)
    }

    fn put_aggregate(&mut self, key: &[u8], window: WindowId, aggregate: &[u8]) -> Result<()> {
        // A put supersedes any cold version of this key; promotion skips
        // cold aggregates whose key is live in the hot tier.
        self.inner.put_aggregate(key, window, aggregate)?;
        self.track_put(key, window, aggregate.len(), window.start);
        self.maybe_demote()
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        if let Some(file) = self.cold_file.as_mut() {
            file.sync_data()
                .map_err(|e| StoreError::io_at("tier cold log sync", &self.cold_path, e))?;
        }
        Ok(())
    }

    fn read_view(&mut self) -> Result<Option<StateView>> {
        let Some(mut view) = self.inner.read_view()? else {
            return Ok(None);
        };
        // Merge cold rows in, older-first, without consuming anything.
        for (window, rows) in self.scan_cold_rows()? {
            match self.aggregate {
                AggregateKind::Incremental => {
                    // Within cold rows the last write per key wins; a
                    // hot aggregate (already in the view) is newer
                    // still, so cold only fills absent keys.
                    let mut last: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
                    for row in rows {
                        last.insert(row.key, row.value);
                    }
                    for (key, value) in last {
                        view.entries
                            .entry((key, window))
                            .or_insert(ViewValue::Aggregate(value));
                    }
                }
                AggregateKind::FullList => {
                    let mut per_key: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
                    for row in rows {
                        per_key.entry(row.key).or_default().push(row.value);
                    }
                    for (key, cold_values) in per_key {
                        match view.entries.entry((key, window)) {
                            std::collections::btree_map::Entry::Occupied(mut e) => {
                                if let ViewValue::Values(hot_values) = e.get_mut() {
                                    let mut merged = cold_values;
                                    merged.append(hot_values);
                                    *hot_values = merged;
                                }
                            }
                            std::collections::btree_map::Entry::Vacant(e) => {
                                e.insert(ViewValue::Values(cold_values));
                            }
                        }
                    }
                }
            }
        }
        Ok(Some(view))
    }

    fn extract_range(
        &mut self,
        in_range: KeyFilter<'_>,
        kind: AggregateKind,
    ) -> Result<Vec<StateEntry>> {
        let inner_entries = self.inner.extract_range(in_range, kind)?;
        if self.index.is_empty() {
            return Ok(inner_entries);
        }
        // Index the hot extract so cold rows can be merged ahead of it.
        let mut hot_values: HashMap<(Vec<u8>, WindowId), Vec<Vec<u8>>> = HashMap::new();
        let mut hot_aggs: HashMap<(Vec<u8>, WindowId), Vec<u8>> = HashMap::new();
        for entry in inner_entries {
            match entry {
                StateEntry::Values {
                    key,
                    window,
                    values,
                } => {
                    hot_values.insert((key, window), values);
                }
                StateEntry::Aggregate { key, window, value } => {
                    hot_aggs.insert((key, window), value);
                }
            }
        }
        let mut out: Vec<StateEntry> = Vec::new();
        for (window, rows) in self.scan_cold_rows()? {
            match self.aggregate {
                AggregateKind::Incremental => {
                    let mut last: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
                    for row in rows {
                        if in_range(&row.key) {
                            last.insert(row.key, row.value);
                        }
                    }
                    for (key, value) in last {
                        // The hot tier's copy (if any) is newer.
                        if !hot_aggs.contains_key(&(key.clone(), window)) {
                            hot_aggs.insert((key, window), value);
                        }
                    }
                }
                AggregateKind::FullList => {
                    let mut per_key: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
                    for row in rows {
                        if in_range(&row.key) {
                            per_key.entry(row.key).or_default().push(row.value);
                        }
                    }
                    for (key, mut values) in per_key {
                        if let Some(hot) = hot_values.remove(&(key.clone(), window)) {
                            values.extend(hot);
                        }
                        hot_values.insert((key, window), values);
                    }
                }
            }
        }
        for ((key, window), values) in hot_values {
            out.push(StateEntry::Values {
                key,
                window,
                values,
            });
        }
        for ((key, window), value) in hot_aggs {
            out.push(StateEntry::Aggregate { key, window, value });
        }
        Ok(out)
    }

    fn inject_entries(&mut self, entries: Vec<StateEntry>) -> Result<()> {
        for entry in entries {
            match entry {
                StateEntry::Values {
                    key,
                    window,
                    values,
                } => {
                    for value in values {
                        self.inner.append(&key, window, &value, window.start)?;
                        self.track_append(&key, window, value.len(), window.start);
                    }
                }
                StateEntry::Aggregate { key, window, value } => {
                    self.inner.put_aggregate(&key, window, &value)?;
                    self.track_put(&key, window, value.len(), window.start);
                }
            }
        }
        self.maybe_demote()
    }

    fn advance_prefetch(&mut self, stream_time: Timestamp) -> Result<()> {
        if let Some(ring) = &self.ring {
            // Install whatever finished since the last boundary.
            let done = ring.drain_tag(TIER_RING_TAG);
            for completion in done {
                let Some((window, _)) = self.inflight.remove(&completion.id) else {
                    continue;
                };
                match completion.into_result() {
                    Ok(payload) => {
                        let blobs = *payload
                            .downcast::<Vec<Vec<u8>>>()
                            .expect("tier prefetch payload");
                        self.install_prefetch(window, blobs);
                    }
                    Err(_) => self.counters.prefetch_wasted.inc(),
                }
            }
            // Submit reads for cold windows about to trigger.
            if let Some(policy) = self.policy.clone() {
                let horizon = stream_time.saturating_add(policy.prefetch_horizon);
                let candidates: Vec<(WindowId, Vec<BlockRef>, u64)> = self
                    .index
                    .iter()
                    .filter(|(w, _)| w.end <= horizon)
                    .filter(|(w, _)| !self.prefetched.contains_key(w))
                    .filter(|(w, _)| !self.inflight.values().any(|(iw, _)| iw == *w))
                    .map(|(w, refs)| {
                        let bytes = refs.iter().map(|r| u64::from(r.len)).sum();
                        (*w, refs.clone(), bytes)
                    })
                    .collect();
                for (window, refs, bytes) in candidates {
                    let pending: u64 = self.inflight.values().map(|(_, b)| b).sum();
                    if self.prefetched_bytes + pending + bytes > policy.prefetch_budget_bytes {
                        break;
                    }
                    let ring = self.ring.as_ref().expect("checked above");
                    let id = ring.submit(
                        TIER_RING_TAG,
                        Self::block_read_job(self.cold_path.clone(), refs),
                    );
                    self.inflight.insert(id, (window, bytes));
                    self.counters.prefetch_submitted.inc();
                }
            }
        }
        self.inner.advance_prefetch(stream_time)
    }

    fn warm(&mut self, pairs: &[(&[u8], WindowId)]) -> Result<()> {
        self.inner.warm(pairs)
    }

    fn wants_warm(&self) -> bool {
        self.inner.wants_warm()
    }

    fn metrics(&self) -> Arc<StoreMetrics> {
        Arc::clone(&self.store_metrics)
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
            + self.prefetched_bytes as usize
            + self.index.len() * std::mem::size_of::<(WindowId, Vec<BlockRef>)>()
    }

    fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        // Seal the hot tier entirely: the snapshot is then just the cold
        // log plus its index, and the inner checkpoint is tiny.
        self.demote_to_budget(0)?;
        self.inner.flush()?;
        let hot_dir = dir.join(CKPT_HOT);
        self.vfs
            .create_dir_all(&hot_dir)
            .map_err(|e| StoreError::io_at("tier checkpoint dir", &hot_dir, e))?;
        self.inner.checkpoint(&hot_dir)?;
        if let Some(file) = self.cold_file.as_mut() {
            file.sync_data()
                .map_err(|e| StoreError::io_at("tier cold log sync", &self.cold_path, e))?;
        }
        let cold_dst = dir.join(CKPT_COLD);
        if self.vfs.exists(&self.cold_path) {
            self.vfs
                .copy(&self.cold_path, &cold_dst)
                .map_err(|e| StoreError::io_at("tier checkpoint cold copy", &cold_dst, e))?;
        } else {
            self.vfs
                .write(&cold_dst, &[])
                .map_err(|e| StoreError::io_at("tier checkpoint cold copy", &cold_dst, e))?;
        }
        let meta = self.encode_meta();
        let meta_dst = dir.join(CKPT_META);
        self.vfs
            .write(&meta_dst, &meta)
            .map_err(|e| StoreError::io_at("tier checkpoint meta", &meta_dst, e))?;
        Ok(())
    }

    fn restore(&mut self, dir: &Path) -> Result<()> {
        self.settle_inflight();
        self.prefetched.clear();
        self.prefetched_bytes = 0;
        self.hot.clear();
        self.hot_bytes = 0;
        self.cold_file = None;
        self.index.clear();
        self.live_bytes = 0;
        self.dead_bytes = 0;
        self.inner.restore(&dir.join(CKPT_HOT))?;
        self.vfs
            .create_dir_all(&self.cold_dir)
            .map_err(|e| StoreError::io_at("tier dir", &self.cold_dir, e))?;
        let cold_src = dir.join(CKPT_COLD);
        if self.vfs.exists(&cold_src) {
            self.vfs
                .copy(&cold_src, &self.cold_path)
                .map_err(|e| self.io_err("tier restore cold copy", e))?;
        } else {
            self.vfs
                .write(&self.cold_path, &[])
                .map_err(|e| self.io_err("tier restore cold copy", e))?;
        }
        let meta_src = dir.join(CKPT_META);
        if self.vfs.exists(&meta_src) {
            let bytes = self
                .vfs
                .read(&meta_src)
                .map_err(|e| StoreError::io_at("tier restore meta", &meta_src, e))?;
            self.decode_meta(&bytes, &meta_src)?;
        } else {
            self.cold_len = 0;
        }
        self.update_gauges();
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.settle_inflight();
        if let Some(ring) = self.ring.take() {
            drop(ring.quiesce());
        }
        self.inner.close()?;
        let _ = self.vfs.remove_file(&self.cold_path);
        let _ = self.vfs.remove_file(&self.cold_dir.join("cold.log.tmp"));
        let _ = std::fs::remove_dir_all(&self.cold_dir);
        Ok(())
    }
}

/// Factory wrapping another backend factory's stores in [`TieredStore`].
pub struct TieredFactory {
    inner: Arc<dyn StateBackendFactory>,
    cfg: TierConfig,
    vfs: Arc<dyn Vfs>,
}

impl TieredFactory {
    /// Tiers every store `inner` creates, with the given knobs.
    pub fn new(inner: Arc<dyn StateBackendFactory>, cfg: TierConfig) -> Self {
        TieredFactory {
            inner,
            cfg,
            vfs: StdVfs::shared(),
        }
    }

    /// Routes the cold log (and ring reads) of every tiered store
    /// through `vfs`, so fault injection covers the cold tier too. The
    /// inner factory needs its own `with_vfs` call — the tier cannot
    /// reach inside it.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }
}

impl StateBackendFactory for TieredFactory {
    fn create(&self, ctx: &OperatorContext) -> Result<Box<dyn StateBackend>> {
        let inner = self.inner.create(ctx)?;
        Ok(Box::new(TieredStore::new(
            inner,
            ctx,
            self.cfg.clone(),
            Arc::clone(&self.vfs),
        )?))
    }

    fn name(&self) -> &'static str {
        "tiered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowKvConfig;
    use crate::store::FlowKvFactory;
    use flowkv_common::backend::{OperatorSemantics, WindowKind};
    use flowkv_common::scratch::ScratchDir;

    fn ctx(dir: &Path, aggregate: AggregateKind, window: WindowKind) -> OperatorContext {
        OperatorContext {
            operator: "tier-test".to_string(),
            partition: 0,
            semantics: OperatorSemantics::new(aggregate, window),
            data_dir: dir.to_path_buf(),
            telemetry: None,
            io: None,
        }
    }

    fn tiered(
        dir: &Path,
        aggregate: AggregateKind,
        window: WindowKind,
        hot_bytes: usize,
    ) -> Box<dyn StateBackend> {
        let factory = TieredFactory::new(
            Arc::new(FlowKvFactory::new(FlowKvConfig::small_for_tests())),
            TierConfig::new(hot_bytes),
        );
        factory
            .create(&ctx(dir, aggregate, window))
            .expect("create tiered store")
    }

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    #[test]
    fn aar_demote_promote_preserves_drain_contents() {
        let dir = ScratchDir::new("tier-aar").unwrap();
        let mut s = tiered(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Fixed { size: 100 },
            0, // force demotion on every write
        );
        let win = w(0, 100);
        for i in 0..20 {
            let key = format!("k{}", i % 3).into_bytes();
            s.append(&key, win, format!("v{i}").as_bytes(), i).unwrap();
        }
        let mut drained: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        while let Some(chunk) = s.get_window_chunk(win).unwrap() {
            for (key, values) in chunk {
                for value in values {
                    drained.push((key.clone(), value));
                }
            }
        }
        let mut expect: Vec<(Vec<u8>, Vec<u8>)> = (0..20)
            .map(|i| {
                (
                    format!("k{}", i % 3).into_bytes(),
                    format!("v{i}").into_bytes(),
                )
            })
            .collect();
        // Per-key order must hold; cross-key order is unspecified.
        drained.sort();
        expect.sort();
        assert_eq!(drained, expect);
        s.close().unwrap();
    }

    #[test]
    fn aur_per_key_order_survives_demotion_interleaved_with_appends() {
        let dir = ScratchDir::new("tier-aur").unwrap();
        let mut s = tiered(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
            0,
        );
        let win = w(0, 100);
        // First half demotes, second half lands hot, then one take.
        for i in 0..6 {
            s.append(b"k", win, format!("v{i}").as_bytes(), i).unwrap();
        }
        let values = s.take_values(b"k", win).unwrap();
        let expect: Vec<Vec<u8>> = (0..6).map(|i| format!("v{i}").into_bytes()).collect();
        assert_eq!(values, expect, "cold rows must replay ahead of hot rows");
        s.close().unwrap();
    }

    #[test]
    fn rmw_last_aggregate_wins_across_tiers() {
        let dir = ScratchDir::new("tier-rmw").unwrap();
        let mut s = tiered(
            dir.path(),
            AggregateKind::Incremental,
            WindowKind::Fixed { size: 100 },
            0,
        );
        let win = w(0, 100);
        s.put_aggregate(b"k", win, b"agg-1").unwrap(); // demoted at once
        s.put_aggregate(b"k", win, b"agg-2").unwrap(); // demoted again
        assert_eq!(
            s.take_aggregate(b"k", win).unwrap(),
            Some(b"agg-2".to_vec())
        );
        assert_eq!(s.take_aggregate(b"k", win).unwrap(), None);
        s.close().unwrap();
    }

    #[test]
    fn checkpoint_restore_round_trips_both_tiers() {
        let dir = ScratchDir::new("tier-ckpt").unwrap();
        let ckpt = ScratchDir::new("tier-ckpt-dir").unwrap();
        let win = w(0, 100);
        let mut s = tiered(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
            64, // small budget: some state demotes, some stays hot
        );
        for i in 0..10 {
            let key = format!("k{}", i % 2).into_bytes();
            s.append(&key, win, format!("v{i}").as_bytes(), i).unwrap();
        }
        let before = {
            let mut e = s.extract_range(&|_| true, AggregateKind::FullList).unwrap();
            e.sort();
            e
        };
        s.checkpoint(ckpt.path()).unwrap();

        let dir2 = ScratchDir::new("tier-ckpt-2").unwrap();
        let mut restored = tiered(
            dir2.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
            64,
        );
        restored.restore(ckpt.path()).unwrap();
        let after = {
            let mut e = restored
                .extract_range(&|_| true, AggregateKind::FullList)
                .unwrap();
            e.sort();
            e
        };
        assert_eq!(after, before);
        // And the restored store still serves reads correctly.
        let values = restored.take_values(b"k0", win).unwrap();
        let expect: Vec<Vec<u8>> = (0..10)
            .filter(|i| i % 2 == 0)
            .map(|i| format!("v{i}").into_bytes())
            .collect();
        assert_eq!(values, expect);
        s.close().unwrap();
        restored.close().unwrap();
    }

    #[test]
    fn extract_inject_merges_cold_before_hot() {
        let dir = ScratchDir::new("tier-extract").unwrap();
        let win = w(0, 100);
        let mut s = tiered(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
            0,
        );
        for i in 0..4 {
            s.append(b"k", win, format!("c{i}").as_bytes(), i).unwrap();
        }
        // Raise the budget by injecting hot rows directly (inject tracks
        // them hot, then the wave demotes them too at budget 0 — so use
        // extract to observe the merged order instead).
        let entries = s.extract_range(&|_| true, AggregateKind::FullList).unwrap();
        assert_eq!(entries.len(), 1);
        match &entries[0] {
            StateEntry::Values { key, values, .. } => {
                assert_eq!(key, b"k");
                let expect: Vec<Vec<u8>> = (0..4).map(|i| format!("c{i}").into_bytes()).collect();
                assert_eq!(values, &expect);
            }
            other => panic!("unexpected entry {other:?}"),
        }
        // Inject into a fresh tiered store and take: same order.
        let dir2 = ScratchDir::new("tier-inject").unwrap();
        let mut t = tiered(
            dir2.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
            0,
        );
        t.inject_entries(entries).unwrap();
        let values = t.take_values(b"k", win).unwrap();
        let expect: Vec<Vec<u8>> = (0..4).map(|i| format!("c{i}").into_bytes()).collect();
        assert_eq!(values, expect);
        s.close().unwrap();
        t.close().unwrap();
    }

    #[test]
    fn compaction_reclaims_promoted_blocks() {
        let dir = ScratchDir::new("tier-compact").unwrap();
        let factory = TieredFactory::new(
            Arc::new(FlowKvFactory::new(FlowKvConfig::small_for_tests())),
            TierConfig {
                hot_bytes: 0,
                compress: true,
                compact_min_dead_bytes: 1,
                compact_min_dead_ratio: 0.1,
            },
        );
        let mut s = factory
            .create(&ctx(
                dir.path(),
                AggregateKind::FullList,
                WindowKind::Session { gap: 50 },
            ))
            .unwrap();
        let win = w(0, 100);
        for i in 0..8 {
            s.append(b"k", win, format!("v{i}").as_bytes(), i).unwrap();
        }
        // Promote (take) then write more: the wave after the next append
        // sees dead blocks above both thresholds and compacts.
        let _ = s.take_values(b"k", win).unwrap();
        s.append(b"k2", w(100, 200), b"x", 101).unwrap();
        // The store still answers correctly after the rewrite.
        assert_eq!(
            s.take_values(b"k2", w(100, 200)).unwrap(),
            vec![b"x".to_vec()]
        );
        s.close().unwrap();
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = TierConfig {
            compact_min_dead_ratio: 1.5,
            ..TierConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
