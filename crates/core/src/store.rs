//! The composite FlowKV store: classification, dispatch, and the
//! [`StateBackend`] integration (paper §3, Figure 5).
//!
//! At construction, [`FlowKvStore::open`] classifies the operator's
//! semantics into one of the three access patterns and instantiates `m`
//! partitioned instances of the matching specialized store. At runtime,
//! the pattern determines which of the Listing-1 APIs are legal; calling
//! a mismatched API is a contract violation and returns
//! [`StoreError::InvalidState`] — the engine selects the right calls from
//! the same classification.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use flowkv_common::backend::{
    AggregateKind, KeyFilter, OperatorContext, OperatorSemantics, StateBackend,
    StateBackendFactory, StateEntry, WindowChunk,
};
use flowkv_common::error::{Result, StoreError};
use flowkv_common::ioring::{IoPolicy, IoRing};
use flowkv_common::metrics::StoreMetrics;
use flowkv_common::registry::{StatePattern, StateView, ViewValue};
use flowkv_common::types::{Timestamp, WindowId};
use flowkv_common::vfs::{StdVfs, Vfs};

use crate::aar::AarStore;
use crate::aur::{AurConfig, AurStore};
use crate::config::FlowKvConfig;
use crate::ett::EttPredictor;
use crate::partition::Partitioned;
use crate::pattern::{classify, AccessPattern};
use crate::rmw::{RmwConfig, RmwStore};

/// The pattern-specific store instances behind one [`FlowKvStore`].
enum Inner {
    Aar(Partitioned<AarStore>),
    Aur(Partitioned<AurStore>),
    Rmw(Partitioned<RmwStore>),
}

/// The semantic-aware composite store for one operator partition.
pub struct FlowKvStore {
    dir: PathBuf,
    pattern: AccessPattern,
    inner: Inner,
    /// Drain cursors for AAR windows spanning several instances.
    window_cursors: HashMap<WindowId, usize>,
    metrics: Arc<StoreMetrics>,
    vfs: Arc<dyn Vfs>,
}

impl FlowKvStore {
    /// Opens a store in `dir` for an operator with the given semantics.
    pub fn open(dir: &Path, semantics: OperatorSemantics, config: FlowKvConfig) -> Result<Self> {
        FlowKvStore::open_with_telemetry(dir, semantics, config, None, "")
    }

    /// Like [`FlowKvStore::open`], additionally wiring a job-wide
    /// telemetry handle into the AUR instances so predicted-vs-actual
    /// trigger-time events flow into the flight recorder. `tag` labels
    /// the emitting partition (`operator/p<N>`).
    pub fn open_with_telemetry(
        dir: &Path,
        semantics: OperatorSemantics,
        config: FlowKvConfig,
        telemetry: Option<Arc<flowkv_common::telemetry::Telemetry>>,
        tag: &str,
    ) -> Result<Self> {
        Self::open_with_vfs(
            dir,
            semantics,
            config,
            telemetry,
            tag,
            StdVfs::shared(),
            None,
        )
    }

    /// Like [`FlowKvStore::open_with_telemetry`], additionally routing
    /// every file operation of every inner store instance through `vfs`,
    /// and — when `io` is set — building one background [`IoRing`] over
    /// that VFS, shared by every instance (each under its own tag).
    pub fn open_with_vfs(
        dir: &Path,
        semantics: OperatorSemantics,
        config: FlowKvConfig,
        telemetry: Option<Arc<flowkv_common::telemetry::Telemetry>>,
        tag: &str,
        vfs: Arc<dyn Vfs>,
        io: Option<IoPolicy>,
    ) -> Result<Self> {
        config.validate()?;
        let pattern = classify(&semantics);
        let metrics = StoreMetrics::new_shared();
        let m = config.store_instances;
        let ring = io.as_ref().filter(|p| p.threads > 0).map(|p| {
            Arc::new(IoRing::with_telemetry(
                Arc::clone(&vfs),
                p.threads,
                p.shuffle_seed,
                telemetry.clone(),
            ))
        });
        // Each instance gets an even share of the write buffer, matching
        // the paper's per-operator budget split across `m` instances.
        let per_instance_buffer = (config.write_buffer_bytes / m).max(1024);
        let inner = match pattern {
            AccessPattern::Aar => {
                let mut instances = Vec::with_capacity(m);
                for j in 0..m {
                    let mut store = AarStore::open_with_vfs(
                        &dir.join(format!("inst{j}")),
                        per_instance_buffer,
                        config.chunk_entries,
                        Arc::clone(&metrics),
                        Arc::clone(&vfs),
                    )?;
                    if let (Some(r), Some(p)) = (&ring, &io) {
                        store = store.with_ring(Arc::clone(r), j as u64, p);
                    }
                    if let Some(t) = &telemetry {
                        store = store.with_telemetry(Arc::clone(t), &format!("{tag}/inst{j}"));
                    }
                    instances.push(store);
                }
                Inner::Aar(Partitioned::new(instances))
            }
            AccessPattern::Aur => {
                let predictor =
                    EttPredictor::for_window_kind(semantics.window, config.custom_ett.clone());
                let aur_cfg = AurConfig {
                    write_buffer_bytes: per_instance_buffer,
                    read_batch_ratio: config.read_batch_ratio,
                    max_space_amplification: config.max_space_amplification,
                };
                let mut instances = Vec::with_capacity(m);
                for j in 0..m {
                    let mut store = AurStore::open_with_vfs(
                        &dir.join(format!("inst{j}")),
                        aur_cfg.clone(),
                        predictor.clone(),
                        Arc::clone(&metrics),
                        Arc::clone(&vfs),
                    )?;
                    if let (Some(r), Some(p)) = (&ring, &io) {
                        store = store.with_ring(Arc::clone(r), j as u64, p);
                    }
                    if let Some(t) = &telemetry {
                        store = store.with_telemetry(Arc::clone(t), &format!("{tag}/inst{j}"));
                    }
                    instances.push(store);
                }
                Inner::Aur(Partitioned::new(instances))
            }
            AccessPattern::Rmw => {
                let rmw_cfg = RmwConfig {
                    write_buffer_bytes: per_instance_buffer,
                    max_space_amplification: config.max_space_amplification,
                };
                let mut instances = Vec::with_capacity(m);
                for j in 0..m {
                    instances.push(RmwStore::open_with_vfs(
                        &dir.join(format!("inst{j}")),
                        rmw_cfg.clone(),
                        Arc::clone(&metrics),
                        Arc::clone(&vfs),
                    )?);
                }
                Inner::Rmw(Partitioned::new(instances))
            }
        };
        Ok(FlowKvStore {
            dir: dir.to_path_buf(),
            pattern,
            inner,
            window_cursors: HashMap::new(),
            metrics,
            vfs,
        })
    }

    /// The access pattern chosen at launch.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Number of store instances (`m`).
    pub fn instances(&self) -> usize {
        match &self.inner {
            Inner::Aar(p) => p.len(),
            Inner::Aur(p) => p.len(),
            Inner::Rmw(p) => p.len(),
        }
    }

    fn wrong_pattern(&self, method: &str) -> StoreError {
        StoreError::invalid_state(format!(
            "{method} is not part of the {} store API",
            self.pattern
        ))
    }
}

impl StateBackend for FlowKvStore {
    fn append(&mut self, key: &[u8], window: WindowId, value: &[u8], ts: Timestamp) -> Result<()> {
        match &mut self.inner {
            Inner::Aar(p) => p.for_key(key).append(key, window, value),
            Inner::Aur(p) => p.for_key(key).append(key, window, value, ts),
            Inner::Rmw(_) => Err(self.wrong_pattern("Append")),
        }
    }

    fn get_window_chunk(&mut self, window: WindowId) -> Result<Option<WindowChunk>> {
        let Inner::Aar(p) = &mut self.inner else {
            return Err(self.wrong_pattern("GetWindow"));
        };
        // Drain instance by instance so only one chunk is in flight.
        let mut idx = *self.window_cursors.entry(window).or_insert(0);
        while idx < p.len() {
            let instance = p.get_mut(idx).expect("index bounded by len");
            match instance.get_window_chunk(window)? {
                Some(chunk) => {
                    self.window_cursors.insert(window, idx);
                    return Ok(Some(chunk));
                }
                None => {
                    idx += 1;
                    self.window_cursors.insert(window, idx);
                }
            }
        }
        self.window_cursors.remove(&window);
        Ok(None)
    }

    fn take_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        match &mut self.inner {
            Inner::Aur(p) => p.for_key(key).take(key, window),
            _ => Err(self.wrong_pattern("Get(K, W) → List<V>")),
        }
    }

    fn peek_values(&mut self, key: &[u8], window: WindowId) -> Result<Vec<Vec<u8>>> {
        match &mut self.inner {
            Inner::Aur(p) => p.for_key(key).peek(key, window),
            _ => Err(self.wrong_pattern("Peek(K, W) → List<V>")),
        }
    }

    fn take_aggregate(&mut self, key: &[u8], window: WindowId) -> Result<Option<Vec<u8>>> {
        match &mut self.inner {
            Inner::Rmw(p) => p.for_key(key).take(key, window),
            _ => Err(self.wrong_pattern("Get(K, W) → A")),
        }
    }

    fn put_aggregate(&mut self, key: &[u8], window: WindowId, aggregate: &[u8]) -> Result<()> {
        match &mut self.inner {
            Inner::Rmw(p) => p.for_key(key).put(key, window, aggregate),
            _ => Err(self.wrong_pattern("Put(K, W, A)")),
        }
    }

    fn flush(&mut self) -> Result<()> {
        match &mut self.inner {
            Inner::Aar(p) => p.iter_mut().try_for_each(AarStore::flush),
            Inner::Aur(p) => p.iter_mut().try_for_each(AurStore::flush),
            Inner::Rmw(p) => p.iter_mut().try_for_each(RmwStore::flush),
        }
    }

    fn advance_prefetch(&mut self, stream_time: Timestamp) -> Result<()> {
        match &mut self.inner {
            Inner::Aar(p) => p
                .iter_mut()
                .try_for_each(|s| s.advance_prefetch(stream_time)),
            Inner::Aur(p) => p
                .iter_mut()
                .try_for_each(|s| s.advance_prefetch(stream_time)),
            // RMW state is written, not anticipatably read; its LSM
            // sibling handles warming instead.
            Inner::Rmw(_) => Ok(()),
        }
    }

    fn read_view(&mut self) -> Result<Option<StateView>> {
        let mut view = StateView::empty(match self.pattern {
            AccessPattern::Aar => StatePattern::Aar,
            AccessPattern::Aur => StatePattern::Aur,
            AccessPattern::Rmw => StatePattern::Rmw,
        });
        // Key-hash routing makes instance key spaces disjoint, so merging
        // the per-instance maps never collides.
        match &mut self.inner {
            Inner::Aar(p) => p
                .iter_mut()
                .try_for_each(|s| s.collect_view(&mut view.entries))?,
            Inner::Aur(p) => p
                .iter_mut()
                .try_for_each(|s| s.collect_view(&mut view.entries))?,
            Inner::Rmw(p) => p
                .iter_mut()
                .try_for_each(|s| s.collect_view(&mut view.entries))?,
        }
        view.metrics = self.metrics.snapshot();
        Ok(Some(view))
    }

    fn extract_range(
        &mut self,
        in_range: KeyFilter<'_>,
        _kind: AggregateKind,
    ) -> Result<Vec<StateEntry>> {
        // The queryable-state snapshot is exact and non-consuming by
        // contract, which is precisely what migration needs; reuse it.
        let view = self.read_view()?.expect("flowkv always supports read_view");
        let mut entries = Vec::new();
        for ((key, window), value) in view.entries {
            if !in_range(&key) {
                continue;
            }
            entries.push(match value {
                ViewValue::Values(values) => StateEntry::Values {
                    key,
                    window,
                    values,
                },
                ViewValue::Aggregate(value) => StateEntry::Aggregate { key, window, value },
            });
        }
        Ok(entries)
    }

    fn metrics(&self) -> Arc<StoreMetrics> {
        Arc::clone(&self.metrics)
    }

    fn memory_bytes(&self) -> usize {
        match &self.inner {
            Inner::Aar(p) => p.iter().map(AarStore::memory_bytes).sum(),
            Inner::Aur(p) => p.iter().map(AurStore::memory_bytes).sum(),
            Inner::Rmw(p) => p.iter().map(RmwStore::memory_bytes).sum(),
        }
    }

    fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        self.vfs
            .create_dir_all(dir)
            .map_err(|e| StoreError::io_at("flowkv checkpoint dir", dir, e))?;
        let run = |j: usize| dir.join(format!("inst{j}"));
        match &mut self.inner {
            Inner::Aar(p) => p
                .iter_mut()
                .enumerate()
                .try_for_each(|(j, s)| s.checkpoint(&run(j))),
            Inner::Aur(p) => p
                .iter_mut()
                .enumerate()
                .try_for_each(|(j, s)| s.checkpoint(&run(j))),
            Inner::Rmw(p) => p
                .iter_mut()
                .enumerate()
                .try_for_each(|(j, s)| s.checkpoint(&run(j))),
        }
    }

    fn restore(&mut self, dir: &Path) -> Result<()> {
        self.window_cursors.clear();
        let run = |j: usize| dir.join(format!("inst{j}"));
        match &mut self.inner {
            Inner::Aar(p) => p
                .iter_mut()
                .enumerate()
                .try_for_each(|(j, s)| s.restore(&run(j))),
            Inner::Aur(p) => p
                .iter_mut()
                .enumerate()
                .try_for_each(|(j, s)| s.restore(&run(j))),
            Inner::Rmw(p) => p
                .iter_mut()
                .enumerate()
                .try_for_each(|(j, s)| s.restore(&run(j))),
        }
    }

    fn close(&mut self) -> Result<()> {
        self.window_cursors.clear();
        match &mut self.inner {
            Inner::Aar(p) => p.iter_mut().try_for_each(AarStore::close)?,
            Inner::Aur(p) => p.iter_mut().try_for_each(AurStore::close)?,
            Inner::Rmw(p) => p.iter_mut().try_for_each(RmwStore::close)?,
        }
        let _ = std::fs::remove_dir_all(&self.dir);
        Ok(())
    }
}

/// Factory producing [`FlowKvStore`] instances for operator partitions.
pub struct FlowKvFactory {
    config: FlowKvConfig,
    vfs: Arc<dyn Vfs>,
}

impl FlowKvFactory {
    /// Creates a factory with the given configuration.
    pub fn new(config: FlowKvConfig) -> Self {
        FlowKvFactory {
            config,
            vfs: StdVfs::shared(),
        }
    }

    /// Routes the file IO of every store this factory creates through
    /// `vfs` (fault injection in tests; [`StdVfs`] by default).
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }
}

impl StateBackendFactory for FlowKvFactory {
    fn create(&self, ctx: &OperatorContext) -> Result<Box<dyn StateBackend>> {
        let dir = ctx.partition_dir();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io_at("backend dir", &dir, e))?;
        Ok(Box::new(FlowKvStore::open_with_vfs(
            &dir,
            ctx.semantics,
            self.config.clone(),
            ctx.telemetry.clone(),
            &ctx.telemetry_tag(),
            Arc::clone(&self.vfs),
            ctx.io.clone(),
        )?))
    }

    fn name(&self) -> &'static str {
        "flowkv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkv_common::backend::{AggregateKind, WindowKind};
    use flowkv_common::scratch::ScratchDir;

    fn w(start: i64, end: i64) -> WindowId {
        WindowId::new(start, end)
    }

    fn open(dir: &Path, aggregate: AggregateKind, window: WindowKind) -> FlowKvStore {
        FlowKvStore::open(
            dir,
            OperatorSemantics::new(aggregate, window),
            FlowKvConfig::small_for_tests(),
        )
        .unwrap()
    }

    #[test]
    fn aar_dispatch_and_cross_instance_drain() {
        let dir = ScratchDir::new("fkv-aar").unwrap();
        let mut s = open(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Fixed { size: 100 },
        );
        assert_eq!(s.pattern(), AccessPattern::Aar);
        assert_eq!(s.instances(), 2);
        let win = w(0, 100);
        for i in 0..40u32 {
            s.append(format!("key-{i}").as_bytes(), win, b"v", i as i64)
                .unwrap();
        }
        let mut total = 0;
        while let Some(chunk) = s.get_window_chunk(win).unwrap() {
            total += chunk.iter().map(|(_, vs)| vs.len()).sum::<usize>();
        }
        assert_eq!(total, 40);
        // Wrong-pattern calls are contract violations.
        assert!(s.take_values(b"k", win).is_err());
        assert!(s.take_aggregate(b"k", win).is_err());
        assert!(s.put_aggregate(b"k", win, b"a").is_err());
    }

    #[test]
    fn aur_dispatch() {
        let dir = ScratchDir::new("fkv-aur").unwrap();
        let mut s = open(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
        );
        assert_eq!(s.pattern(), AccessPattern::Aur);
        let win = w(0, 100);
        s.append(b"k", win, b"v1", 10).unwrap();
        s.append(b"k", win, b"v2", 20).unwrap();
        assert_eq!(
            s.take_values(b"k", win).unwrap(),
            vec![b"v1".to_vec(), b"v2".to_vec()]
        );
        assert!(s.get_window_chunk(win).is_err());
        assert!(s.take_aggregate(b"k", win).is_err());
    }

    #[test]
    fn rmw_dispatch() {
        let dir = ScratchDir::new("fkv-rmw").unwrap();
        let mut s = open(
            dir.path(),
            AggregateKind::Incremental,
            WindowKind::Session { gap: 50 },
        );
        assert_eq!(s.pattern(), AccessPattern::Rmw);
        let win = w(0, 100);
        s.put_aggregate(b"k", win, b"7").unwrap();
        assert_eq!(s.take_aggregate(b"k", win).unwrap(), Some(b"7".to_vec()));
        assert!(s.append(b"k", win, b"v", 0).is_err());
        assert!(s.take_values(b"k", win).is_err());
    }

    #[test]
    fn keys_route_to_consistent_instances() {
        let dir = ScratchDir::new("fkv-routing").unwrap();
        let mut s = open(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
        );
        let win = w(0, 100);
        for i in 0..20u32 {
            let key = format!("key-{i}");
            s.append(key.as_bytes(), win, &i.to_le_bytes(), 1).unwrap();
        }
        for i in 0..20u32 {
            let key = format!("key-{i}");
            assert_eq!(
                s.take_values(key.as_bytes(), win).unwrap(),
                vec![i.to_le_bytes().to_vec()],
                "key {key} lost across partitions"
            );
        }
    }

    #[test]
    fn checkpoint_restore_all_instances() {
        let dir = ScratchDir::new("fkv-ckpt").unwrap();
        let ckpt = ScratchDir::new("fkv-ckpt-dst").unwrap();
        let mut s = open(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
        );
        let win = w(0, 100);
        for i in 0..10u32 {
            s.append(format!("key-{i}").as_bytes(), win, b"v", 1)
                .unwrap();
        }
        s.checkpoint(ckpt.path()).unwrap();
        for i in 0..10u32 {
            s.append(format!("key-{i}").as_bytes(), win, b"extra", 2)
                .unwrap();
        }
        s.restore(ckpt.path()).unwrap();
        for i in 0..10u32 {
            assert_eq!(
                s.take_values(format!("key-{i}").as_bytes(), win).unwrap(),
                vec![b"v".to_vec()]
            );
        }
    }

    #[test]
    fn factory_creates_and_names() {
        let dir = ScratchDir::new("fkv-factory").unwrap();
        let factory = FlowKvFactory::new(FlowKvConfig::small_for_tests());
        assert_eq!(factory.name(), "flowkv");
        let ctx = OperatorContext {
            operator: "op".into(),
            partition: 1,
            semantics: OperatorSemantics::new(AggregateKind::Incremental, WindowKind::Global),
            data_dir: dir.path().to_path_buf(),
            telemetry: None,
            io: None,
        };
        let mut b = factory.create(&ctx).unwrap();
        b.put_aggregate(b"k", WindowId::global(), b"1").unwrap();
        assert_eq!(
            b.take_aggregate(b"k", WindowId::global()).unwrap(),
            Some(b"1".to_vec())
        );
    }

    #[test]
    fn read_view_merges_instances_and_never_consumes() {
        use flowkv_common::registry::ViewValue;
        let dir = ScratchDir::new("fkv-view").unwrap();
        let mut s = open(
            dir.path(),
            AggregateKind::FullList,
            WindowKind::Session { gap: 50 },
        );
        let win = w(0, 100);
        for i in 0..20u32 {
            s.append(format!("key-{i}").as_bytes(), win, &i.to_le_bytes(), 1)
                .unwrap();
        }
        let view = s.read_view().unwrap().expect("flowkv is queryable");
        assert_eq!(view.pattern, StatePattern::Aur);
        assert_eq!(view.len(), 20);
        for i in 0..20u32 {
            assert_eq!(
                view.get(format!("key-{i}").as_bytes(), win),
                Some(&ViewValue::Values(vec![i.to_le_bytes().to_vec()]))
            );
        }
        // The snapshot consumed nothing: every key is still takeable.
        for i in 0..20u32 {
            assert_eq!(
                s.take_values(format!("key-{i}").as_bytes(), win).unwrap(),
                vec![i.to_le_bytes().to_vec()]
            );
        }
    }

    #[test]
    fn close_removes_directory() {
        let dir = ScratchDir::new("fkv-close").unwrap();
        let store_dir = dir.path().join("store");
        let mut s = open(
            &store_dir,
            AggregateKind::FullList,
            WindowKind::Fixed { size: 100 },
        );
        s.append(b"k", w(0, 100), b"v", 0).unwrap();
        s.flush().unwrap();
        s.close().unwrap();
        assert!(!store_dir.exists());
    }
}
