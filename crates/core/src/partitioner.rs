//! Key-range partitioning for sharded multi-worker execution.
//!
//! The cluster coordinator shards a job's key space across N workers.
//! Rather than `hash % N` (which reshuffles almost every key when N
//! changes), the [`KeyRangePartitioner`] divides the 64-bit hash space
//! into N contiguous ranges via the multiply-shift trick:
//!
//! ```text
//! shard(key) = (hash(key) as u128 * N as u128) >> 64
//! ```
//!
//! Contiguity is what makes **live rescaling** cheap: the state owned by
//! a worker is exactly one hash interval, so an N→M rescale is an
//! interval-intersection problem — each old shard's state splits into at
//! most `ceil(M/N) + 1` new shards, and each new shard merges pieces
//! from at most `ceil(N/M) + 1` old shards. Combined with FlowKV's
//! single-writer-per-partition layout (every store instance is owned by
//! one thread, so its logs can be scanned without coordination), split
//! and merge reduce to sequential scans filtered by hash range.
//!
//! The hash is seeded differently from the intra-worker
//! [`flowkv_common::hash::partition_of`] placement so the two levels of
//! partitioning (worker shard, then store instance within the worker)
//! stay decorrelated.

use std::ops::RangeInclusive;

use flowkv_common::hash::hash64_seeded;

/// Seed decorrelating the shard hash from the store-instance hash
/// (`partition_of` uses `0x5157`).
pub const RANGE_SEED: u64 = 0x4b52_414e_4745_5331;

/// Divides the 64-bit key-hash space into `n` contiguous ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRangePartitioner {
    shards: usize,
}

impl KeyRangePartitioner {
    /// A partitioner over `shards` contiguous hash ranges.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        KeyRangePartitioner { shards }
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The seeded hash that positions `key` in the shared range space.
    ///
    /// All range filters (store extraction, migration routing) must use
    /// this exact hash so a key's shard assignment is consistent across
    /// every layer.
    pub fn key_hash(key: &[u8]) -> u64 {
        hash64_seeded(key, RANGE_SEED)
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.shard_of_hash(Self::key_hash(key))
    }

    /// The shard owning hash position `h`.
    pub fn shard_of_hash(&self, h: u64) -> usize {
        ((u128::from(h) * self.shards as u128) >> 64) as usize
    }

    /// The inclusive hash range `[lo, hi]` owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn range(&self, shard: usize) -> (u64, u64) {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let n = self.shards as u128;
        let lo = ((shard as u128) << 64).div_ceil(n);
        let hi = (((shard as u128 + 1) << 64).div_ceil(n)) - 1;
        (lo as u64, hi as u64)
    }

    /// The shards of `self` whose ranges intersect `[lo, hi]`.
    ///
    /// With `self` at the *new* parallelism and `[lo, hi]` an *old*
    /// shard's range, this is the migration fan-out: the set of new
    /// workers that receive a piece of that old shard's state.
    pub fn covering(&self, lo: u64, hi: u64) -> RangeInclusive<usize> {
        self.shard_of_hash(lo)..=self.shard_of_hash(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let p = KeyRangePartitioner::new(1);
        assert_eq!(p.range(0), (0, u64::MAX));
        assert_eq!(p.shard_of(b"anything"), 0);
    }

    #[test]
    fn ranges_are_disjoint_and_cover_the_space() {
        for n in [1usize, 2, 3, 4, 7, 8, 16] {
            let p = KeyRangePartitioner::new(n);
            let mut next = 0u64;
            for s in 0..n {
                let (lo, hi) = p.range(s);
                assert_eq!(lo, next, "gap or overlap before shard {s} of {n}");
                assert!(lo <= hi);
                // Boundary hashes land in exactly this shard.
                assert_eq!(p.shard_of_hash(lo), s);
                assert_eq!(p.shard_of_hash(hi), s);
                if s + 1 < n {
                    assert_eq!(p.shard_of_hash(hi + 1), s + 1);
                    next = hi + 1;
                } else {
                    assert_eq!(hi, u64::MAX, "last shard must end the space");
                }
            }
        }
    }

    #[test]
    fn shard_of_matches_range_membership() {
        for n in [2usize, 3, 5, 8] {
            let p = KeyRangePartitioner::new(n);
            for i in 0..1000u32 {
                let key = i.to_le_bytes();
                let s = p.shard_of(&key);
                let (lo, hi) = p.range(s);
                let h = KeyRangePartitioner::key_hash(&key);
                assert!((lo..=hi).contains(&h));
            }
        }
    }

    #[test]
    fn doubling_splits_each_shard_in_place() {
        // Contiguous ranges nest under doubling: old shard s at N=2
        // becomes exactly new shards {2s, 2s+1} at N=4.
        let old = KeyRangePartitioner::new(2);
        let new = KeyRangePartitioner::new(4);
        for s in 0..2 {
            let (lo, hi) = old.range(s);
            assert_eq!(new.covering(lo, hi), (2 * s)..=(2 * s + 1));
        }
    }

    #[test]
    fn shards_are_roughly_balanced() {
        let p = KeyRangePartitioner::new(4);
        let mut counts = vec![0usize; 4];
        for i in 0..4000u32 {
            counts[p.shard_of(&i.to_le_bytes())] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn decorrelated_from_store_instance_placement() {
        // Keys in one worker shard must still spread over store
        // instances; a correlated hash would map a shard to one instance.
        let p = KeyRangePartitioner::new(2);
        let mut insts = [0usize; 2];
        for i in 0..2000u32 {
            let key = i.to_le_bytes();
            if p.shard_of(&key) == 0 {
                insts[flowkv_common::hash::partition_of(&key, 2)] += 1;
            }
        }
        assert!(insts[0] > 100 && insts[1] > 100, "correlated: {insts:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_panics() {
        let _ = KeyRangePartitioner::new(0);
    }
}
