//! FlowKV's user-configurable parameters (paper §6, "FlowKV
//! Configuration").

use std::sync::Arc;

use flowkv_common::error::{Result, StoreError};
use flowkv_common::types::{Timestamp, WindowId};

/// A user-supplied trigger-time predictor for custom window functions
/// (paper §8): given the key, the window, and the maximum tuple timestamp
/// observed in the window, return the estimated trigger time, or `None`
/// when no safe estimate exists.
pub type CustomEttFn = Arc<dyn Fn(&[u8], WindowId, Timestamp) -> Option<Timestamp> + Send + Sync>;

/// Tuning knobs of a FlowKV store.
///
/// The paper's evaluation settings are `read_batch_ratio = 0.02`,
/// `write_buffer_bytes = 2048 MiB`, `max_space_amplification = 1.5`, and
/// `store_instances = 2` (§6); the defaults here keep those ratios but a
/// laptop-scale buffer size.
#[derive(Clone)]
pub struct FlowKvConfig {
    /// Fraction of live windows loaded per predictive batch read
    /// (`N = ratio × live windows`). Zero disables prefetching.
    pub read_batch_ratio: f64,
    /// Flush the in-memory write buffer when it reaches this many bytes.
    pub write_buffer_bytes: usize,
    /// Compact the AUR/RMW logs when
    /// `total_bytes / (total_bytes − dead_bytes)` exceeds this factor.
    pub max_space_amplification: f64,
    /// Number of independent store instances per physical operator (`m`).
    pub store_instances: usize,
    /// Keys returned per [`get_window_chunk`] call (gradual state
    /// loading, paper §4.1).
    ///
    /// [`get_window_chunk`]: flowkv_common::backend::StateBackend::get_window_chunk
    pub chunk_entries: usize,
    /// Optional trigger-time predictor for custom window functions.
    pub custom_ett: Option<CustomEttFn>,
}

impl Default for FlowKvConfig {
    fn default() -> Self {
        FlowKvConfig {
            read_batch_ratio: 0.02,
            write_buffer_bytes: 4 << 20,
            max_space_amplification: 1.5,
            store_instances: 2,
            chunk_entries: 1024,
            custom_ett: None,
        }
    }
}

impl FlowKvConfig {
    /// A configuration scaled down for unit tests: tiny buffers force
    /// flushes, prefetches, and compactions with little data.
    pub fn small_for_tests() -> Self {
        FlowKvConfig {
            read_batch_ratio: 0.1,
            write_buffer_bytes: 4 << 10,
            max_space_amplification: 1.5,
            store_instances: 2,
            chunk_entries: 8,
            custom_ett: None,
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.read_batch_ratio) {
            return Err(StoreError::InvalidConfig {
                param: "read_batch_ratio",
                detail: format!("must be in [0, 1], got {}", self.read_batch_ratio),
            });
        }
        if self.max_space_amplification < 1.0 {
            return Err(StoreError::InvalidConfig {
                param: "max_space_amplification",
                detail: format!("must be ≥ 1, got {}", self.max_space_amplification),
            });
        }
        if self.store_instances == 0 {
            return Err(StoreError::InvalidConfig {
                param: "store_instances",
                detail: "must be positive".to_string(),
            });
        }
        if self.chunk_entries == 0 {
            return Err(StoreError::InvalidConfig {
                param: "chunk_entries",
                detail: "must be positive".to_string(),
            });
        }
        Ok(())
    }

    /// Returns a copy with the given read batch ratio.
    pub fn with_read_batch_ratio(mut self, ratio: f64) -> Self {
        self.read_batch_ratio = ratio;
        self
    }

    /// Returns a copy with the given write buffer size.
    pub fn with_write_buffer_bytes(mut self, bytes: usize) -> Self {
        self.write_buffer_bytes = bytes;
        self
    }

    /// Returns a copy with the given maximum space amplification.
    pub fn with_max_space_amplification(mut self, msa: f64) -> Self {
        self.max_space_amplification = msa;
        self
    }

    /// Returns a copy with the given number of store instances.
    pub fn with_store_instances(mut self, m: usize) -> Self {
        self.store_instances = m;
        self
    }
}

impl std::fmt::Debug for FlowKvConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowKvConfig")
            .field("read_batch_ratio", &self.read_batch_ratio)
            .field("write_buffer_bytes", &self.write_buffer_bytes)
            .field("max_space_amplification", &self.max_space_amplification)
            .field("store_instances", &self.store_instances)
            .field("chunk_entries", &self.chunk_entries)
            .field("custom_ett", &self.custom_ett.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_ratios() {
        let cfg = FlowKvConfig::default();
        assert!((cfg.read_batch_ratio - 0.02).abs() < 1e-12);
        assert!((cfg.max_space_amplification - 1.5).abs() < 1e-12);
        assert_eq!(cfg.store_instances, 2);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(FlowKvConfig::default()
            .with_read_batch_ratio(1.5)
            .validate()
            .is_err());
        assert!(FlowKvConfig::default()
            .with_read_batch_ratio(-0.1)
            .validate()
            .is_err());
        assert!(FlowKvConfig::default()
            .with_max_space_amplification(0.9)
            .validate()
            .is_err());
        assert!(FlowKvConfig::default()
            .with_store_instances(0)
            .validate()
            .is_err());
    }

    #[test]
    fn builders_set_fields() {
        let cfg = FlowKvConfig::default()
            .with_read_batch_ratio(0.05)
            .with_write_buffer_bytes(1024)
            .with_max_space_amplification(2.0)
            .with_store_instances(4);
        assert!((cfg.read_batch_ratio - 0.05).abs() < 1e-12);
        assert_eq!(cfg.write_buffer_bytes, 1024);
        assert!((cfg.max_space_amplification - 2.0).abs() < 1e-12);
        assert_eq!(cfg.store_instances, 4);
    }
}
