//! Property tests for the AUR store against an in-memory model, across
//! randomized configurations.
//!
//! The AUR store's correctness-critical machinery — write-buffer spills,
//! predictive batch reads, prefetch evictions, dead-prefix tracking, and
//! MSA-triggered compaction — must never change the fetch-and-remove
//! semantics. The model is a plain map of value lists.

use std::collections::HashMap;

use flowkv::aur::{AurConfig, AurStore};
use flowkv::ett::EttPredictor;
use flowkv_common::metrics::StoreMetrics;
use flowkv_common::scratch::ScratchDir;
use flowkv_common::types::WindowId;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Append a value for key k in the window starting at w*100.
    Append {
        k: u8,
        w: u8,
        len: u8,
        ts: i64,
    },
    /// Fetch-and-remove key k's window w.
    Take {
        k: u8,
        w: u8,
    },
    Flush,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            6 => (0u8..5, 0u8..4, any::<u8>(), 0i64..500)
                .prop_map(|(k, w, len, ts)| Op::Append { k, w, len, ts }),
            3 => (0u8..5, 0u8..4).prop_map(|(k, w)| Op::Take { k, w }),
            1 => Just(Op::Flush),
        ],
        1..150,
    )
}

fn window(w: u8) -> WindowId {
    let start = i64::from(w) * 100;
    WindowId::new(start, start + 100)
}

/// Per-key window lists drained at the end of a model run.
type Remaining = Vec<((u8, u8), Vec<Vec<u8>>)>;

/// A value derived deterministically from the op so mismatches are
/// attributable.
fn value(k: u8, w: u8, len: u8, ts: i64) -> Vec<u8> {
    let mut v = vec![k, w];
    v.extend_from_slice(&ts.to_le_bytes());
    v.extend(std::iter::repeat_n(0xab, usize::from(len) % 64));
    v
}

fn check(ops: &[Op], cfg: AurConfig) -> Result<(), TestCaseError> {
    let dir = ScratchDir::new("aur-prop").unwrap();
    let mut store = AurStore::open(
        dir.path(),
        cfg,
        EttPredictor::SessionGap { gap: 50 },
        StoreMetrics::new_shared(),
    )
    .unwrap();
    let mut model: HashMap<(u8, u8), Vec<Vec<u8>>> = HashMap::new();
    for op in ops {
        match *op {
            Op::Append { k, w, len, ts } => {
                let v = value(k, w, len, ts);
                store
                    .append(format!("key{k}").as_bytes(), window(w), &v, ts)
                    .unwrap();
                model.entry((k, w)).or_default().push(v);
            }
            Op::Take { k, w } => {
                let got = store.take(format!("key{k}").as_bytes(), window(w)).unwrap();
                let expect = model.remove(&(k, w)).unwrap_or_default();
                prop_assert_eq!(got, expect, "take({}, {})", k, w);
            }
            Op::Flush => store.flush().unwrap(),
        }
    }
    // Drain whatever the model still holds.
    let mut remaining: Remaining = model.into_iter().collect();
    remaining.sort_by_key(|(kw, _)| *kw);
    for ((k, w), expect) in remaining {
        let got = store.take(format!("key{k}").as_bytes(), window(w)).unwrap();
        prop_assert_eq!(got, expect, "final take({}, {})", k, w);
    }
    store.close().unwrap();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tiny buffers: every append path goes through flush + batch read.
    #[test]
    fn matches_model_with_tiny_buffers(ops in ops()) {
        check(&ops, AurConfig {
            write_buffer_bytes: 256,
            read_batch_ratio: 0.1,
            max_space_amplification: 1.2,
        })?;
    }

    /// Prefetching disabled: the per-window read path.
    #[test]
    fn matches_model_without_prefetch(ops in ops()) {
        check(&ops, AurConfig {
            write_buffer_bytes: 512,
            read_batch_ratio: 0.0,
            max_space_amplification: 1.5,
        })?;
    }

    /// Aggressive prefetching plus lazy compaction.
    #[test]
    fn matches_model_with_aggressive_prefetch(ops in ops()) {
        check(&ops, AurConfig {
            write_buffer_bytes: 1024,
            read_batch_ratio: 1.0,
            max_space_amplification: 4.0,
        })?;
    }

    /// Checkpoint/restore at a random cut keeps the prefix state.
    #[test]
    fn checkpoint_restore_at_random_cut(ops in ops(), cut in any::<prop::sample::Index>()) {
        let dir = ScratchDir::new("aur-prop-ckpt").unwrap();
        let ckpt = ScratchDir::new("aur-prop-ckpt-dst").unwrap();
        let cfg = AurConfig {
            write_buffer_bytes: 512,
            read_batch_ratio: 0.1,
            max_space_amplification: 1.5,
        };
        let mut store = AurStore::open(
            dir.path(),
            cfg,
            EttPredictor::SessionGap { gap: 50 },
            StoreMetrics::new_shared(),
        ).unwrap();
        let mut model: HashMap<(u8, u8), Vec<Vec<u8>>> = HashMap::new();
        let cut = cut.index(ops.len().max(1));
        for op in &ops[..cut] {
            match *op {
                Op::Append { k, w, len, ts } => {
                    let v = value(k, w, len, ts);
                    store.append(format!("key{k}").as_bytes(), window(w), &v, ts).unwrap();
                    model.entry((k, w)).or_default().push(v);
                }
                Op::Take { k, w } => {
                    let got = store.take(format!("key{k}").as_bytes(), window(w)).unwrap();
                    let expect = model.remove(&(k, w)).unwrap_or_default();
                    prop_assert_eq!(got, expect);
                }
                Op::Flush => store.flush().unwrap(),
            }
        }
        store.checkpoint(ckpt.path()).unwrap();
        // Post-checkpoint noise that the restore must erase.
        store.append(b"key0", window(0), b"garbage", 499).unwrap();
        store.take(b"key1", window(1)).unwrap();
        store.restore(ckpt.path()).unwrap();

        let mut remaining: Remaining = model.into_iter().collect();
        remaining.sort_by_key(|(kw, _)| *kw);
        for ((k, w), expect) in remaining {
            let got = store.take(format!("key{k}").as_bytes(), window(w)).unwrap();
            prop_assert_eq!(got, expect, "restored take({}, {})", k, w);
        }
        store.close().unwrap();
    }
}
